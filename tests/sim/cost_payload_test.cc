// Tests for the heterogeneous-cost payload (ROADMAP item 2): CostCounters
// rendering, thread-count byte-stability, agreement between the sweep
// engine and a standalone RunPartitionSimulation, the unit-model control
// identities, and the error Statuses for bad service configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "slb/sim/partition_simulator.h"
#include "slb/sim/report.h"
#include "slb/sim/sweep.h"
#include "slb/workload/scenario.h"

namespace slb {
namespace {

ScenarioOptions SmallOptions() {
  ScenarioOptions opt;
  opt.num_keys = 500;
  opt.num_messages = 20000;
  opt.zipf_exponent = 1.2;
  return opt;
}

ServiceConfig ParetoService() {
  ServiceConfig service;
  service.cost_model = "pareto";
  service.rate = 0.5;
  return service;
}

SweepGrid CostGrid() {
  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("zipf", SmallOptions()),
                    ScenarioFromCatalog("flash-crowd", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices};
  grid.worker_counts = {4, 8};
  grid.num_samples = 10;
  grid.seed = 7;
  grid.service = ParetoService();
  SweepVariant count;
  count.label = "count";
  SweepVariant cost;
  cost.label = "cost";
  cost.options.balance_on = BalanceSignal::kCost;
  SweepVariant inflight;
  inflight.label = "inflight";
  inflight.options.balance_on = BalanceSignal::kInFlight;
  grid.variants = {count, cost, inflight};
  return grid;
}

// The tentpole guarantee extended to cost payloads: every emitter renders a
// cost-bearing grid (all three balance signals included) byte-identically
// at 1 vs 8 threads.
TEST(CostPayloadDeterminismTest, TablesAreThreadCountInvariant) {
  SweepGrid grid = CostGrid();
  grid.runs = 2;
  const SweepGrid copy = grid;
  const SweepResultTable serial = RunSweep(grid, 1);
  const SweepResultTable parallel = RunSweep(copy, 8);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(SweepToTsv(serial), SweepToTsv(parallel));
  EXPECT_EQ(SweepToCsv(serial), SweepToCsv(parallel));
  EXPECT_EQ(SweepToJson(serial), SweepToJson(parallel));
  EXPECT_EQ(SweepSeriesToTsv(serial), SweepSeriesToTsv(parallel));
  EXPECT_EQ(SweepWorkerLoadsToTsv(serial), SweepWorkerLoadsToTsv(parallel));
}

// The sweep engine adds nothing to the simulator: a cell's CostCounters are
// exactly the fields of a standalone RunPartitionSimulation with the same
// fully-resolved configuration.
TEST(CostPayloadTest, CellEqualsStandaloneSimulation) {
  SweepGrid grid = CostGrid();
  grid.scenarios = {ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kDChoices};
  grid.worker_counts = {8};
  grid.variants = {grid.variants[2]};  // the in-flight signal, worst case
  const SweepResultTable table = RunSweep(grid, 2);
  ASSERT_EQ(table.cells.size(), 1u);
  const SweepCellResult& cell = table.cells[0];
  ASSERT_TRUE(cell.status.ok()) << cell.status.ToString();
  ASSERT_TRUE(cell.payload.cost.has_value());

  PartitionSimConfig config;
  config.algorithm = AlgorithmKind::kDChoices;
  config.partitioner.num_workers = 8;
  config.partitioner.hash_seed = grid.seed;
  config.partitioner.balance_on = BalanceSignal::kInFlight;
  config.num_sources = grid.num_sources;
  config.num_samples = grid.num_samples;
  config.service = ParetoService();
  ScenarioOptions opt = SmallOptions();
  opt.seed = grid.seed;  // run 0 of the cell
  auto stream = MakeScenario("zipf", opt);
  ASSERT_TRUE(stream.ok());
  auto standalone = RunPartitionSimulation(config, stream->get());
  ASSERT_TRUE(standalone.ok()) << standalone.status().ToString();

  const CostCounters& counters = *cell.payload.cost;
  EXPECT_EQ(counters.cost_imbalance, standalone->cost_imbalance);
  EXPECT_EQ(counters.count_imbalance, standalone->final_imbalance);
  EXPECT_EQ(counters.misrank_rate, standalone->misrank_rate);
  EXPECT_EQ(counters.peak_outstanding, standalone->peak_outstanding);
  EXPECT_EQ(counters.total_cost, standalone->total_cost);
}

// Unit-model control identities: with every message at cost 1.0, the cost
// metric IS the count metric and the frequency threshold IS the cost
// threshold, so the mis-rank rate is exactly zero — not approximately.
TEST(CostPayloadTest, UnitModelIsTheExactControl) {
  PartitionSimConfig config;
  config.partitioner.num_workers = 8;
  config.service.cost_model = "unit";
  config.service.rate = 1.0;
  auto stream = MakeScenario("zipf", SmallOptions());
  ASSERT_TRUE(stream.ok());
  auto result = RunPartitionSimulation(config, stream->get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->misrank_rate, 0.0);
  EXPECT_DOUBLE_EQ(result->cost_imbalance, result->final_imbalance);
  EXPECT_DOUBLE_EQ(result->total_cost,
                   static_cast<double>(result->total_messages));
}

// Cost-aware signals route differently from the count signal — the knob is
// live, not decorative — while a disabled service leaves results identical
// to the pre-cost-layer behaviour.
TEST(CostPayloadTest, BalanceSignalChangesRouting) {
  auto run = [](BalanceSignal signal) {
    PartitionSimConfig config;
    config.algorithm = AlgorithmKind::kPkg;
    config.partitioner.num_workers = 8;
    config.partitioner.balance_on = signal;
    config.service.cost_model = "anti-correlated";
    config.service.rate = 0.5;
    auto stream = MakeScenario("zipf", SmallOptions());
    EXPECT_TRUE(stream.ok());
    auto result = RunPartitionSimulation(config, stream->get());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result->cost_imbalance;
  };
  const double on_count = run(BalanceSignal::kCount);
  const double on_cost = run(BalanceSignal::kCost);
  EXPECT_NE(on_count, on_cost);
  EXPECT_LT(on_cost, on_count)
      << "balancing on cost must improve the cost imbalance";
}

TEST(CostPayloadTest, ColumnsAppearWithValues) {
  SweepGrid grid = CostGrid();
  grid.scenarios = {ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kDChoices};
  grid.worker_counts = {4};
  const SweepResultTable table = RunSweep(grid, 2);
  for (const SweepCellResult& cell : table.cells) {
    ASSERT_TRUE(cell.status.ok()) << cell.status.ToString();
    ASSERT_TRUE(cell.payload.cost.has_value());
    EXPECT_GT(cell.payload.cost->total_cost, 0.0);
    EXPECT_GT(cell.payload.cost->peak_outstanding, 0.0);
  }

  const std::string tsv = SweepToTsv(table);
  const std::string csv = SweepToCsv(table);
  for (const char* column :
       {"cost_imbalance", "count_imbalance", "misrank_rate",
        "peak_outstanding", "total_cost"}) {
    EXPECT_NE(tsv.find(column), std::string::npos) << column;
    EXPECT_NE(csv.find(column), std::string::npos) << column;
  }
  const std::string json = SweepToJson(table);
  EXPECT_NE(json.find("\"cost\":{\"cost_imbalance\":"), std::string::npos);
}

// Grids without a service model have no cost component and no cost columns.
TEST(CostPayloadTest, CostFreeGridsStayClean) {
  SweepGrid grid = CostGrid();
  grid.service = ServiceConfig{};
  grid.variants.resize(1);  // only the count variant is valid without costs
  const SweepResultTable table = RunSweep(grid, 1);
  for (const SweepCellResult& cell : table.cells) {
    ASSERT_TRUE(cell.status.ok()) << cell.status.ToString();
    EXPECT_FALSE(cell.payload.cost.has_value());
  }
  const std::string header = SweepToTsv(table);
  EXPECT_EQ(header.substr(0, header.find('\n')).find("cost_imbalance"),
            std::string::npos);
}

// SweepVariant::service overrides the grid's service model per cell, making
// the cost model itself a sweep axis (bench_cost_routing's layout).
TEST(CostPayloadTest, VariantServiceOverridesGrid) {
  SweepGrid grid = CostGrid();
  grid.scenarios = {ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kPkg};
  grid.worker_counts = {4};
  SweepVariant inherit;
  inherit.label = "grid-service";
  SweepVariant unit;
  unit.label = "unit-override";
  unit.service.cost_model = "unit";
  unit.service.rate = 1.0;
  grid.variants = {inherit, unit};
  const SweepResultTable table = RunSweep(grid, 1);
  ASSERT_EQ(table.cells.size(), 2u);
  ASSERT_TRUE(table.cells[0].payload.cost.has_value());
  ASSERT_TRUE(table.cells[1].payload.cost.has_value());
  // The pareto grid default prices messages heterogeneously; the unit
  // override does not — total cost equals the message count exactly.
  EXPECT_NE(table.cells[0].payload.cost->total_cost, 20000.0);
  EXPECT_DOUBLE_EQ(table.cells[1].payload.cost->total_cost, 20000.0);
}

// --- error Statuses --------------------------------------------------------

TEST(CostPayloadErrorTest, NonPositiveServiceRateFailsTheCell) {
  PartitionSimConfig config;
  config.partitioner.num_workers = 4;
  config.service.cost_model = "unit";
  config.service.rate = 0.0;
  auto stream = MakeScenario("zipf", SmallOptions());
  ASSERT_TRUE(stream.ok());
  auto result = RunPartitionSimulation(config, stream->get());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  config.service.rate = std::nan("");  // !(x > 0) rejects NaN too
  EXPECT_FALSE(RunPartitionSimulation(config, stream->get()).ok());
}

TEST(CostPayloadErrorTest, BadCostModelKnobsFailTheCell) {
  PartitionSimConfig config;
  config.partitioner.num_workers = 4;
  config.service.cost_model = "pareto";
  config.service.options.pareto_tail_index = -1.0;
  auto stream = MakeScenario("zipf", SmallOptions());
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE(
      RunPartitionSimulation(config, stream->get()).status().IsInvalidArgument());

  config.service.cost_model = "correlated";
  config.service.options = CostModelOptions{};
  config.service.options.cost_correlation = 1.5;
  EXPECT_TRUE(
      RunPartitionSimulation(config, stream->get()).status().IsInvalidArgument());

  config.service.cost_model = "no-such-model";
  config.service.options = CostModelOptions{};
  EXPECT_TRUE(
      RunPartitionSimulation(config, stream->get()).status().IsInvalidArgument());
}

TEST(CostPayloadErrorTest, CostSignalWithoutServiceFailsTheCell) {
  PartitionSimConfig config;
  config.partitioner.num_workers = 4;
  config.partitioner.balance_on = BalanceSignal::kCost;
  auto stream = MakeScenario("zipf", SmallOptions());
  ASSERT_TRUE(stream.ok());
  auto result = RunPartitionSimulation(config, stream->get());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(CostPayloadErrorTest, FactoryRejectsSignalWithoutModel) {
  PartitionerOptions options;
  options.num_workers = 4;
  options.balance_on = BalanceSignal::kInFlight;
  auto partitioner = CreatePartitioner(AlgorithmKind::kPkg, options);
  ASSERT_FALSE(partitioner.ok());
  EXPECT_TRUE(partitioner.status().IsInvalidArgument());
}

// Failed cost cells stay isolated: siblings keep their payloads and every
// emitter still renders the full cost column set.
TEST(CostPayloadErrorTest, ErrorCellsStayIsolated) {
  SweepGrid grid = CostGrid();
  grid.scenarios = {ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kPkg};
  grid.worker_counts = {4};
  SweepVariant bad;
  bad.label = "bad-rate";
  bad.service.cost_model = "unit";
  bad.service.rate = -1.0;
  grid.variants.push_back(bad);
  const SweepResultTable table = RunSweep(grid, 2);
  ASSERT_EQ(table.cells.size(), 4u);
  EXPECT_EQ(table.num_errors(), 1u);
  const SweepCellResult* failed = table.Find("zipf", "bad-rate",
                                             AlgorithmKind::kPkg, 4);
  ASSERT_NE(failed, nullptr);
  EXPECT_FALSE(failed->status.ok());
  EXPECT_FALSE(failed->payload.cost.has_value());
  const std::string tsv = SweepToTsv(table);
  EXPECT_NE(tsv.find("cost_imbalance"), std::string::npos);
  EXPECT_NE(tsv.find("InvalidArgument"), std::string::npos);
}

}  // namespace
}  // namespace slb
