// Tests for the typed per-cell payload slot: custom cell runners, payload
// component rendering (memory tables, latency snapshots, throughput
// counters, named metrics), and the tentpole guarantee that payload-bearing
// grids stay byte-stable and thread-count-invariant.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "slb/common/histogram.h"
#include "slb/sim/report.h"
#include "slb/sim/sweep.h"
#include "slb/workload/scenario.h"

namespace slb {
namespace {

ScenarioOptions SmallOptions() {
  ScenarioOptions opt;
  opt.num_keys = 500;
  opt.num_messages = 20000;
  opt.zipf_exponent = 1.2;
  return opt;
}

// A runner exercising every payload component: the default simulation plus
// a memory table, a latency histogram snapshot, throughput counters, and
// named metrics — all pure functions of the cell context.
Result<CellPayload> FullPayloadRunner(const SweepCellContext& ctx) {
  auto payload = ctx.RunDefault();
  if (!payload.ok()) return payload;

  MemoryModelTable memory;
  memory.baseline = "pkg";
  memory.baseline_entries = 1000;
  memory.estimated_entries = 1100 + ctx.num_workers;
  memory.measured_entries = payload->sim.memory_entries;
  memory.estimated_overhead_pct = 10.0 + ctx.num_workers;
  memory.measured_overhead_pct = 5.0;
  payload->memory = memory;

  // A deterministic histogram derived from the cell's imbalance series.
  Histogram histogram(/*reservoir_capacity=*/0, /*seed=*/1);
  for (double v : payload->sim.imbalance_series) histogram.Add(1000.0 * v);
  payload->latency = LatencySnapshot::FromHistogram(histogram);

  ThroughputCounters throughput;
  throughput.throughput_per_s = 500.0 * ctx.num_workers;
  throughput.makespan_s = 2.0;
  throughput.completed = payload->sim.total_messages;
  payload->throughput = throughput;

  payload->AddCount("routed", payload->sim.total_messages);
  payload->AddMetric("head_share",
                     static_cast<double>(payload->sim.head_messages) /
                         static_cast<double>(payload->sim.total_messages));
  return payload;
}

SweepGrid PayloadGrid() {
  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("flash-crowd", SmallOptions()),
                    ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices};
  grid.worker_counts = {4, 8};
  grid.num_samples = 10;
  grid.seed = 7;
  grid.runs = 2;
  grid.track_memory = true;
  grid.runner = FullPayloadRunner;
  return grid;
}

// The tentpole guarantee extended to payloads: a grid whose runner emits
// memory + histogram(+ throughput + metric) payloads renders byte-identically
// at 1 vs 8 threads in every format.
TEST(PayloadDeterminismTest, PayloadTablesAreThreadCountInvariant) {
  const SweepGrid grid = PayloadGrid();
  const SweepResultTable serial = RunSweep(grid, 1);
  const SweepResultTable parallel = RunSweep(grid, 8);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(SweepToTsv(serial), SweepToTsv(parallel));
  EXPECT_EQ(SweepToCsv(serial), SweepToCsv(parallel));
  EXPECT_EQ(SweepToJson(serial), SweepToJson(parallel));
  EXPECT_EQ(SweepSeriesToTsv(serial), SweepSeriesToTsv(parallel));
  EXPECT_EQ(SweepWorkerLoadsToTsv(serial), SweepWorkerLoadsToTsv(parallel));
}

TEST(PayloadRenderTest, ComponentColumnsAppearWithValues) {
  SweepGrid grid = PayloadGrid();
  grid.scenarios.resize(1);
  grid.worker_counts = {4};
  grid.algorithms = {AlgorithmKind::kDChoices};
  grid.runs = 1;
  const SweepResultTable table = RunSweep(grid, 2);
  ASSERT_EQ(table.cells.size(), 1u);
  const SweepCellResult& cell = table.cells[0];
  ASSERT_TRUE(cell.status.ok()) << cell.status.ToString();
  ASSERT_TRUE(cell.payload.memory.has_value());
  ASSERT_TRUE(cell.payload.latency.has_value());
  ASSERT_TRUE(cell.payload.throughput.has_value());
  EXPECT_EQ(cell.payload.FindMetric("routed")->value, 20000.0);
  EXPECT_TRUE(cell.payload.FindMetric("routed")->integral);

  const std::string tsv = SweepToTsv(table);
  EXPECT_NE(tsv.find("mem_baseline"), std::string::npos);
  EXPECT_NE(tsv.find("mem_est_overhead_pct"), std::string::npos);
  EXPECT_NE(tsv.find("lat_p99_ms"), std::string::npos);
  EXPECT_NE(tsv.find("throughput_per_s"), std::string::npos);
  EXPECT_NE(tsv.find("routed"), std::string::npos);
  EXPECT_NE(tsv.find("\tpkg\t"), std::string::npos);
  EXPECT_NE(tsv.find("\t20000"), std::string::npos);  // integral, no exponent

  const std::string json = SweepToJson(table);
  EXPECT_NE(json.find("\"memory\":{\"baseline\":\"pkg\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{\"count\":"), std::string::npos);
  EXPECT_NE(json.find("\"throughput\":{\"per_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{\"routed\":20000"), std::string::npos);
}

// Tables whose cells carry no payload extras keep exactly the fixed columns
// — migrating a bench onto payloads never perturbs an unrelated table.
TEST(PayloadRenderTest, NoComponentsMeansNoExtraColumns) {
  SweepGrid grid = PayloadGrid();
  grid.runner = {};  // default runner: plain simulation payload
  grid.scenarios.resize(1);
  const SweepResultTable table = RunSweep(grid, 2);
  const std::string tsv = SweepToTsv(table);
  const std::string header = tsv.substr(0, tsv.find('\n'));
  EXPECT_EQ(header.find("mem_"), std::string::npos);
  EXPECT_EQ(header.find("lat_"), std::string::npos);
  EXPECT_EQ(header.find("throughput"), std::string::npos);
  EXPECT_NE(header.find("total_messages"), std::string::npos);
}

// An error cell among payload-bearing siblings: the failure is isolated,
// its payload is zeroed, and every emitter still renders the full column
// set (zeros / "-" for the failed row) without perturbing sibling rows.
TEST(PayloadErrorTest, ErrorCellsWithPayloadsStayIsolated) {
  SweepGrid grid = PayloadGrid();
  grid.runs = 1;
  grid.runner = [](const SweepCellContext& ctx) -> Result<CellPayload> {
    if (ctx.algorithm == AlgorithmKind::kPkg && ctx.num_workers == 8) {
      return Status::Internal("injected cell failure");
    }
    return FullPayloadRunner(ctx);
  };
  const SweepResultTable table = RunSweep(grid, 4);
  ASSERT_EQ(table.cells.size(), 8u);
  EXPECT_EQ(table.num_errors(), 2u);  // one per scenario

  for (const SweepCellResult& cell : table.cells) {
    if (cell.algorithm == AlgorithmKind::kPkg && cell.num_workers == 8) {
      EXPECT_FALSE(cell.status.ok());
      EXPECT_FALSE(cell.payload.memory.has_value());
      EXPECT_TRUE(cell.payload.metrics.empty());
      EXPECT_TRUE(cell.payload.sim.imbalance_series.empty());
    } else {
      EXPECT_TRUE(cell.status.ok()) << cell.status.ToString();
      EXPECT_TRUE(cell.payload.memory.has_value());
    }
  }

  // Every row of the TSV has the same field count despite the mixed
  // payloads, and the failed rows carry the baseline placeholder.
  const std::string tsv = SweepToTsv(table);
  size_t line_start = 0;
  int fields_expected = -1;
  while (line_start < tsv.size()) {
    size_t line_end = tsv.find('\n', line_start);
    const std::string line = tsv.substr(line_start, line_end - line_start);
    const int fields =
        1 + static_cast<int>(std::count(line.begin(), line.end(), '\t'));
    if (fields_expected < 0) fields_expected = fields;
    EXPECT_EQ(fields, fields_expected) << line;
    line_start = line_end + 1;
  }
  EXPECT_NE(tsv.find("Internal"), std::string::npos);
  const std::string json = SweepToJson(table);
  EXPECT_NE(json.find("injected cell failure"), std::string::npos);
}

// Cells may disagree on which metrics they attach; the header is the union
// in first-seen cell order and absences render as zero.
TEST(PayloadRenderTest, MetricUnionIsFirstSeenOrderWithZeroFill) {
  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices};
  grid.worker_counts = {4};
  grid.num_samples = 5;
  grid.runner = [](const SweepCellContext& ctx) -> Result<CellPayload> {
    CellPayload payload;
    if (ctx.algorithm == AlgorithmKind::kPkg) {
      payload.AddCount("alpha", 1);
    } else {
      payload.AddCount("beta", 2);
    }
    return payload;
  };
  const SweepResultTable table = RunSweep(grid, 1);
  const std::string tsv = SweepToTsv(table);
  const std::string header = tsv.substr(0, tsv.find('\n'));
  const size_t alpha = header.find("alpha");
  const size_t beta = header.find("beta");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(beta, std::string::npos);
  EXPECT_LT(alpha, beta);  // PKG row comes first in grid order
  // Row 1 (PKG): alpha=1, beta=0. Row 2 (D-C): alpha=0, beta=2.
  EXPECT_NE(tsv.find("\t1\t0\n"), std::string::npos);
  EXPECT_NE(tsv.find("\t0\t2\n"), std::string::npos);
}

TEST(PayloadTest, RunDefaultMatchesEngineDefault) {
  SweepGrid plain = PayloadGrid();
  plain.runner = {};
  SweepGrid wrapped = PayloadGrid();
  wrapped.runner = [](const SweepCellContext& ctx) { return ctx.RunDefault(); };
  EXPECT_EQ(SweepToTsv(RunSweep(plain, 4)), SweepToTsv(RunSweep(wrapped, 4)));
}

TEST(PayloadTest, LatencySnapshotMatchesHistogram) {
  Histogram histogram(0, 1);
  for (int i = 1; i <= 1000; ++i) histogram.Add(static_cast<double>(i));
  const LatencySnapshot snapshot = LatencySnapshot::FromHistogram(histogram);
  EXPECT_EQ(snapshot.count, 1000);
  EXPECT_DOUBLE_EQ(snapshot.avg_ms, histogram.mean());
  EXPECT_DOUBLE_EQ(snapshot.p50_ms, histogram.p50());
  EXPECT_DOUBLE_EQ(snapshot.p95_ms, histogram.p95());
  EXPECT_DOUBLE_EQ(snapshot.p99_ms, histogram.p99());
  EXPECT_DOUBLE_EQ(snapshot.max_ms, 1000.0);
}

// SweepVariant::num_sources overrides the grid's source count per cell —
// the sender-local-state ablation axis.
TEST(PayloadTest, VariantSourceCountOverride) {
  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kDChoices};
  grid.worker_counts = {4};
  grid.num_samples = 5;
  grid.num_sources = 5;
  SweepVariant one;
  one.label = "s=1";
  one.num_sources = 1;
  SweepVariant def;
  def.label = "s=grid";
  grid.variants = {one, def};
  grid.runner = [](const SweepCellContext& ctx) -> Result<CellPayload> {
    CellPayload payload;
    payload.AddCount("sources", ctx.MakeSimConfig().num_sources);
    return payload;
  };
  const SweepResultTable table = RunSweep(grid, 1);
  ASSERT_EQ(table.cells.size(), 2u);
  EXPECT_EQ(table.cells[0].payload.FindMetric("sources")->value, 1.0);
  EXPECT_EQ(table.cells[1].payload.FindMetric("sources")->value, 5.0);
}

SweepGrid RescaleGrid() {
  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kPkg, AlgorithmKind::kConsistentHash};
  grid.worker_counts = {8};
  grid.num_samples = 10;
  grid.seed = 7;
  grid.rescale.events = {{0.5, 12}};
  return grid;
}

// The migration payload: elastic cells carry the MigrationCounters component
// and every emitter renders its columns.
TEST(MigrationPayloadTest, ColumnsAppearWithValues) {
  const SweepResultTable table = RunSweep(RescaleGrid(), 2);
  ASSERT_EQ(table.cells.size(), 2u);
  for (const SweepCellResult& cell : table.cells) {
    ASSERT_TRUE(cell.status.ok()) << cell.status.ToString();
    ASSERT_TRUE(cell.payload.migration.has_value());
    EXPECT_EQ(cell.payload.migration->final_num_workers, 12u);
    EXPECT_EQ(cell.payload.migration->rescale_events, 1u);
    EXPECT_GT(cell.payload.migration->keys_migrated, 0u);
  }

  const std::string tsv = SweepToTsv(table);
  for (const char* column :
       {"final_workers", "rescale_events", "keys_migrated",
        "state_bytes_migrated", "stalled_messages", "moved_key_fraction"}) {
    EXPECT_NE(tsv.find(column), std::string::npos) << column;
    EXPECT_NE(SweepToCsv(table).find(column), std::string::npos) << column;
  }
  const std::string json = SweepToJson(table);
  EXPECT_NE(json.find("\"migration\":{\"final_workers\":12"),
            std::string::npos);
}

// The tentpole guarantee extended to elastic runs: migration columns are
// byte-stable and thread-count-invariant (the tracker's sorted eager handoff
// plus the deterministic stream make this exact, not approximate).
TEST(MigrationPayloadTest, TablesAreThreadCountInvariant) {
  SweepGrid grid = RescaleGrid();
  grid.rescale.events = {{0.4, 12}, {0.8, 6}};  // out AND eager in
  grid.runs = 2;
  const SweepGrid copy = grid;
  const SweepResultTable serial = RunSweep(grid, 1);
  const SweepResultTable parallel = RunSweep(copy, 8);
  EXPECT_EQ(SweepToTsv(serial), SweepToTsv(parallel));
  EXPECT_EQ(SweepToCsv(serial), SweepToCsv(parallel));
  EXPECT_EQ(SweepToJson(serial), SweepToJson(parallel));
  EXPECT_EQ(SweepSeriesToTsv(serial), SweepSeriesToTsv(parallel));
}

// SweepVariant::rescale overrides the grid schedule per cell, making the
// schedule a sweep axis; an empty variant schedule inherits the grid's.
TEST(MigrationPayloadTest, VariantScheduleOverridesGrid) {
  SweepGrid grid = RescaleGrid();
  grid.algorithms = {AlgorithmKind::kConsistentHash};
  SweepVariant stat;
  stat.label = "grid-schedule";
  SweepVariant out;
  out.label = "out-to-16";
  out.rescale.events = {{0.5, 16}};
  grid.variants = {stat, out};
  const SweepResultTable table = RunSweep(grid, 1);
  ASSERT_EQ(table.cells.size(), 2u);
  ASSERT_TRUE(table.cells[0].payload.migration.has_value());
  EXPECT_EQ(table.cells[0].payload.migration->final_num_workers, 12u);
  ASSERT_TRUE(table.cells[1].payload.migration.has_value());
  EXPECT_EQ(table.cells[1].payload.migration->final_num_workers, 16u);
}

// Static cells have no migration component and no migration columns.
TEST(MigrationPayloadTest, StaticGridsStayClean) {
  SweepGrid grid = RescaleGrid();
  grid.rescale.events.clear();
  const SweepResultTable table = RunSweep(grid, 1);
  for (const SweepCellResult& cell : table.cells) {
    EXPECT_FALSE(cell.payload.migration.has_value());
  }
  const std::string header = SweepToTsv(table);
  EXPECT_EQ(header.substr(0, header.find('\n')).find("keys_migrated"),
            std::string::npos);
}

// The worker-loads emitter: one row per (cell, worker), head + tail == total,
// failed cells contribute nothing.
TEST(PayloadTest, WorkerLoadsEmitter) {
  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kWChoices};
  grid.worker_counts = {0, 4};  // first cell fails in the factory
  grid.num_samples = 5;
  const SweepResultTable table = RunSweep(grid, 1);
  ASSERT_EQ(table.cells.size(), 2u);
  EXPECT_EQ(table.num_errors(), 1u);
  const std::string loads = SweepWorkerLoadsToTsv(table);
  // Header plus exactly 4 rows (the failed 0-worker cell adds none).
  EXPECT_EQ(static_cast<int>(std::count(loads.begin(), loads.end(), '\n')), 5);
  EXPECT_NE(loads.find("head_pct"), std::string::npos);
}

}  // namespace
}  // namespace slb
