#include "slb/sim/sweep.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "slb/sim/report.h"
#include "slb/workload/datasets.h"
#include "slb/workload/scenario.h"

namespace slb {
namespace {

ScenarioOptions SmallOptions() {
  ScenarioOptions opt;
  opt.num_keys = 500;
  opt.num_messages = 20000;
  opt.zipf_exponent = 1.2;
  return opt;
}

// A grid crossing every axis: catalog + dataset scenarios, two algorithms,
// two deployment sizes, a partitioner-option variant, multiple runs.
SweepGrid MakeTestGrid() {
  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("flash-crowd", SmallOptions()),
                    ScenarioFromCatalog("hot-set-churn", SmallOptions()),
                    ScenarioFromDataset(MakeZipfSpec(1.2, 500, 20000))};
  grid.algorithms = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices};
  grid.worker_counts = {4, 8};
  SweepVariant tight;
  tight.label = "theta*n=0.1";
  tight.options.theta_ratio = 0.1;
  grid.variants = {SweepVariant{}, tight};
  grid.num_samples = 10;
  grid.seed = 11;
  grid.runs = 2;
  return grid;
}

TEST(SweepGridTest, CellCountIsCartesianProduct) {
  const SweepGrid grid = MakeTestGrid();
  EXPECT_EQ(SweepCellCount(grid), 3u * 2u * 2u * 2u);
  SweepGrid no_variants = grid;
  no_variants.variants.clear();
  EXPECT_EQ(SweepCellCount(no_variants), 3u * 2u * 2u);
}

TEST(SweepGridTest, RowOrderIsGridOrder) {
  SweepGrid grid = MakeTestGrid();
  grid.scenarios.resize(1);
  grid.variants.clear();
  const SweepResultTable table = RunSweep(grid, 2);
  ASSERT_EQ(table.cells.size(), 4u);
  // workers is the outer axis, algorithm the inner one.
  EXPECT_EQ(table.cells[0].num_workers, 4u);
  EXPECT_EQ(table.cells[0].algorithm, AlgorithmKind::kPkg);
  EXPECT_EQ(table.cells[1].num_workers, 4u);
  EXPECT_EQ(table.cells[1].algorithm, AlgorithmKind::kDChoices);
  EXPECT_EQ(table.cells[2].num_workers, 8u);
  EXPECT_EQ(table.cells[3].num_workers, 8u);
  EXPECT_EQ(table.cells[0].scenario, "flash-crowd");
  EXPECT_EQ(table.cells[0].variant, "");
}

// The tentpole guarantee: the same grid produces a byte-identical result
// table no matter how many threads execute it. Rendered output is a pure
// function of the table, so byte-comparing renderings compares the tables.
TEST(SweepDeterminismTest, SerialAndParallelTablesAreByteIdentical) {
  const SweepGrid grid = MakeTestGrid();
  const SweepResultTable serial = RunSweep(grid, 1);
  const SweepResultTable parallel = RunSweep(grid, 8);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(SweepToTsv(serial), SweepToTsv(parallel));
  EXPECT_EQ(SweepToCsv(serial), SweepToCsv(parallel));
  EXPECT_EQ(SweepToJson(serial), SweepToJson(parallel));
  EXPECT_EQ(SweepSeriesToTsv(serial), SweepSeriesToTsv(parallel));
  // Belt and braces beyond the renderers: the full numeric payloads.
  for (size_t i = 0; i < serial.cells.size(); ++i) {
    const SweepCellResult& a = serial.cells[i];
    const SweepCellResult& b = parallel.cells[i];
    EXPECT_EQ(a.mean_final_imbalance, b.mean_final_imbalance) << "cell " << i;
    EXPECT_EQ(a.payload.sim.imbalance_series, b.payload.sim.imbalance_series)
        << "cell " << i;
    EXPECT_EQ(a.payload.sim.worker_loads, b.payload.sim.worker_loads) << "cell " << i;
  }
}

// Every cell must equal what a standalone RunPartitionSimulation call with
// the same configuration and seed produces — the engine adds orchestration,
// never different numbers.
TEST(SweepDeterminismTest, CellsMatchStandaloneSimulation) {
  SweepGrid grid = MakeTestGrid();
  grid.runs = 1;
  const SweepResultTable table = RunSweep(grid, 4);
  std::vector<SweepVariant> variants = grid.variants;
  for (size_t si = 0; si < grid.scenarios.size(); ++si) {
    for (const SweepVariant& variant : variants) {
      for (uint32_t workers : grid.worker_counts) {
        for (AlgorithmKind algorithm : grid.algorithms) {
          const SweepCellResult* cell = table.Find(
              grid.scenarios[si].label, variant.label, algorithm, workers);
          ASSERT_NE(cell, nullptr);
          ASSERT_TRUE(cell->status.ok()) << cell->status.ToString();

          auto gen = grid.scenarios[si].make(grid.seed);
          ASSERT_TRUE(gen.ok());
          PartitionSimConfig config;
          config.algorithm = algorithm;
          config.partitioner = variant.options;
          config.partitioner.num_workers = workers;
          config.partitioner.hash_seed = grid.seed;
          config.num_sources = grid.num_sources;
          config.num_samples = grid.num_samples;
          auto standalone = RunPartitionSimulation(config, gen->get());
          ASSERT_TRUE(standalone.ok());
          EXPECT_EQ(cell->mean_final_imbalance, standalone->final_imbalance);
          EXPECT_EQ(cell->payload.sim.final_imbalance, standalone->final_imbalance);
          EXPECT_EQ(cell->payload.sim.imbalance_series,
                    standalone->imbalance_series);
          EXPECT_EQ(cell->payload.sim.worker_loads, standalone->worker_loads);
        }
      }
    }
  }
}

TEST(SweepEdgeCaseTest, EmptyGridProducesEmptyTable) {
  const SweepGrid grid;  // all axes empty
  EXPECT_EQ(SweepCellCount(grid), 0u);
  const SweepResultTable table = RunSweep(grid);
  EXPECT_TRUE(table.cells.empty());
  EXPECT_EQ(table.num_errors(), 0u);
  // Renderers degrade to header-only output.
  EXPECT_EQ(SweepToCsv(table).find('\n'), SweepToCsv(table).size() - 1);
  EXPECT_EQ(SweepToJson(table), "[\n]\n");
}

TEST(SweepEdgeCaseTest, SingleCellGrid) {
  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kWChoices};
  grid.worker_counts = {6};
  grid.num_samples = 5;
  const SweepResultTable table = RunSweep(grid, 1);
  ASSERT_EQ(table.cells.size(), 1u);
  const SweepCellResult& cell = table.cells[0];
  EXPECT_TRUE(cell.status.ok());
  EXPECT_EQ(cell.scenario, "zipf");
  EXPECT_EQ(cell.num_workers, 6u);
  EXPECT_EQ(cell.payload.sim.total_messages, 20000u);
  EXPECT_EQ(cell.payload.sim.worker_loads.size(), 6u);
  EXPECT_GT(cell.mean_final_imbalance, 0.0);
}

// A failing cell reports its error in the table and must not poison its
// sibling cells. num_workers = 0 makes the partitioner factory reject the
// configuration; a bad scenario knob makes the generator factory reject it.
TEST(SweepEdgeCaseTest, ErrorCellsAreIsolated) {
  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kPkg};
  grid.worker_counts = {0, 4};  // first cell invalid, second fine
  grid.num_samples = 5;
  const SweepResultTable table = RunSweep(grid, 2);
  ASSERT_EQ(table.cells.size(), 2u);
  EXPECT_EQ(table.num_errors(), 1u);

  const SweepCellResult& bad = table.cells[0];
  EXPECT_FALSE(bad.status.ok());
  EXPECT_TRUE(bad.status.IsInvalidArgument());
  EXPECT_EQ(bad.mean_final_imbalance, 0.0);
  EXPECT_TRUE(bad.payload.sim.imbalance_series.empty());

  const SweepCellResult& good = table.cells[1];
  EXPECT_TRUE(good.status.ok()) << good.status.ToString();
  EXPECT_EQ(good.payload.sim.total_messages, 20000u);

  // The error shows up in every rendering without breaking the format.
  const std::string csv = SweepToCsv(table);
  EXPECT_NE(csv.find("InvalidArgument"), std::string::npos);
  const std::string json = SweepToJson(table);
  EXPECT_NE(json.find("\"error\":"), std::string::npos);
  // Failed cells contribute no series rows.
  const std::string series = SweepSeriesToTsv(table);
  EXPECT_EQ(series.find("\t0\t"), std::string::npos);
}

TEST(SweepEdgeCaseTest, ScenarioConstructionFailureIsReported) {
  ScenarioOptions bad = SmallOptions();
  bad.burst_fraction = 7.0;
  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("flash-crowd", bad),
                    ScenarioFromCatalog("zipf", SmallOptions())};
  grid.algorithms = {AlgorithmKind::kPkg};
  grid.worker_counts = {4};
  grid.num_samples = 5;
  const SweepResultTable table = RunSweep(grid, 2);
  ASSERT_EQ(table.cells.size(), 2u);
  EXPECT_TRUE(table.cells[0].status.IsInvalidArgument());
  EXPECT_TRUE(table.cells[1].status.ok());
}

TEST(SweepScenarioTest, TraceScenarioReplaysVerbatim) {
  Trace trace;
  trace.num_keys = 10;
  for (uint64_t i = 0; i < 3000; ++i) trace.keys.push_back(i % 7);
  SweepScenario scenario = ScenarioFromTrace("fixture", std::move(trace));
  auto a = scenario.make(1);
  auto b = scenario.make(2);  // seed is irrelevant for replay
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->num_messages(), 3000u);
  for (int i = 0; i < 3000; ++i) ASSERT_EQ((*a)->NextKey(), (*b)->NextKey());
}

TEST(SweepScenarioTest, DatasetScenarioUsesCellSeed) {
  SweepScenario scenario = ScenarioFromDataset(MakeZipfSpec(1.2, 500, 1000));
  auto a = scenario.make(3);
  auto b = scenario.make(3);
  auto c = scenario.make(4);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  int same_ab = 0;
  int same_ac = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t ka = (*a)->NextKey();
    same_ab += ka == (*b)->NextKey();
    same_ac += ka == (*c)->NextKey();
  }
  EXPECT_EQ(same_ab, 1000);
  EXPECT_LT(same_ac, 800);
}

TEST(SweepReportTest, CsvEscapesAndJsonIsWellFormedOnErrors) {
  SweepResultTable table;
  SweepCellResult cell;
  cell.scenario = "weird,\"label\"";
  cell.variant = "v\n1";
  cell.status = Status::InvalidArgument("quote \" and\nnewline");
  table.cells.push_back(cell);
  const std::string csv = SweepToCsv(table);
  EXPECT_NE(csv.find("\"weird,\"\"label\"\"\""), std::string::npos);
  const std::string json = SweepToJson(table);
  EXPECT_NE(json.find("quote \\\" and\\nnewline"), std::string::npos);
}

}  // namespace
}  // namespace slb
