// Crosschecks of the DSPE queueing model against closed-form predictions —
// the quantitative backing for DESIGN.md's claim that the simulator
// reproduces the throughput/latency *mechanisms* of the paper's cluster.

#include <gtest/gtest.h>

#include "slb/sim/dspe_simulator.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

DspeConfig TheoryConfig(AlgorithmKind algo, double z) {
  DspeConfig config;
  config.algorithm = algo;
  config.partitioner.num_workers = 40;
  config.partitioner.hash_seed = 3;
  config.num_sources = 16;
  config.num_messages = 40000;
  config.zipf_exponent = z;
  config.num_keys = 10000;
  config.worker_service_ms = 2.0;      // 500/s per worker
  config.transport_rate_per_s = 5000;  // 25% of aggregate worker capacity
  config.max_pending_per_source = 60;
  config.seed = 21;
  return config;
}

TEST(DspeTheoryTest, BottleneckFormulaPredictsKgThroughput) {
  // KG pins the hottest key (share p1) on one worker. When
  // p1 * transport_rate exceeds the worker service rate, throughput is
  // service_rate / p1.
  const double z = 2.0;
  const double p1 = ZipfTopProbability(z, 10000);  // ~0.60
  const DspeConfig config = TheoryConfig(AlgorithmKind::kKeyGrouping, z);
  const double service_rate = 1000.0 / config.worker_service_ms;  // per worker
  ASSERT_GT(p1 * config.transport_rate_per_s, service_rate)
      << "setup must make the hot worker the bottleneck";
  const double predicted = service_rate / p1;

  auto result = RunDspeSimulation(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->throughput_per_s, predicted, 0.15 * predicted);
}

TEST(DspeTheoryTest, TransportFormulaPredictsBalancedThroughput) {
  // A balanced scheme leaves every worker far below saturation; throughput
  // equals the transport stage's rate.
  auto result =
      RunDspeSimulation(TheoryConfig(AlgorithmKind::kShuffleGrouping, 2.0));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->throughput_per_s, 5000.0, 300.0);
}

TEST(DspeTheoryTest, CreditWindowBoundsHotWorkerLatency) {
  // Under extreme skew, nearly the whole credit window piles up at the hot
  // worker; its queue is bounded by sources * max_pending, so the worst
  // per-worker average latency is about window * service_time.
  DspeConfig config = TheoryConfig(AlgorithmKind::kKeyGrouping, 2.0);
  auto result = RunDspeSimulation(config);
  ASSERT_TRUE(result.ok());
  const double window =
      static_cast<double>(config.num_sources) * config.max_pending_per_source;
  const double ceiling = window * config.worker_service_ms;
  EXPECT_LE(result->max_worker_avg_latency_ms, ceiling * 1.05);
  EXPECT_GE(result->max_worker_avg_latency_ms, 0.3 * ceiling)
      << "most of the window should sit at the hot worker";
}

TEST(DspeTheoryTest, ShrinkingCreditWindowShrinksTailLatency) {
  DspeConfig config = TheoryConfig(AlgorithmKind::kKeyGrouping, 2.0);
  config.max_pending_per_source = 60;
  auto wide = RunDspeSimulation(config);
  config.max_pending_per_source = 15;
  auto narrow = RunDspeSimulation(config);
  ASSERT_TRUE(wide.ok());
  ASSERT_TRUE(narrow.ok());
  EXPECT_LT(narrow->max_worker_avg_latency_ms,
            0.5 * wide->max_worker_avg_latency_ms)
      << "backpressure caps queueing delay (Storm's max spout pending)";
  // Throughput at the bottleneck is window-independent once the hot worker
  // never idles.
  EXPECT_NEAR(narrow->throughput_per_s, wide->throughput_per_s,
              0.15 * wide->throughput_per_s);
}

TEST(DspeTheoryTest, BalancedLatencyEqualsWindowOverTransportRate) {
  // Balanced schemes park the whole credit window in the transport queue
  // (sources emit instantly whenever they hold credits), so steady-state
  // latency is window / transport_rate plus the worker service time — the
  // framework-buffering floor that dominates SG's latency in Fig. 14.
  DspeConfig config = TheoryConfig(AlgorithmKind::kShuffleGrouping, 1.0);
  auto result = RunDspeSimulation(config);
  ASSERT_TRUE(result.ok());
  const double window =
      static_cast<double>(config.num_sources) * config.max_pending_per_source;
  const double predicted_ms =
      window / config.transport_rate_per_s * 1e3 + config.worker_service_ms;
  EXPECT_GE(result->latency_p50_ms,
            1000.0 / config.transport_rate_per_s + config.worker_service_ms);
  EXPECT_NEAR(result->latency_p50_ms, predicted_ms, 0.15 * predicted_ms);
}

}  // namespace
}  // namespace slb
