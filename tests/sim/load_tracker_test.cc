#include "slb/sim/load_tracker.h"

#include <gtest/gtest.h>

namespace slb {
namespace {

TEST(LoadTrackerTest, EmptyHasZeroImbalance) {
  LoadTracker tracker(4);
  EXPECT_EQ(tracker.total(), 0u);
  EXPECT_DOUBLE_EQ(tracker.Imbalance(), 0.0);
}

TEST(LoadTrackerTest, PerfectBalanceIsZeroImbalance) {
  LoadTracker tracker(4);
  for (uint32_t w = 0; w < 4; ++w) {
    for (int i = 0; i < 25; ++i) tracker.Record(w, i, false);
  }
  EXPECT_EQ(tracker.total(), 100u);
  EXPECT_NEAR(tracker.Imbalance(), 0.0, 1e-12);
}

TEST(LoadTrackerTest, ImbalanceMatchesDefinition) {
  // I = max(L) - avg(L); 70/30 on two workers: 0.7 - 0.5 = 0.2.
  LoadTracker tracker(2);
  for (int i = 0; i < 70; ++i) tracker.Record(0, i, false);
  for (int i = 0; i < 30; ++i) tracker.Record(1, i, false);
  EXPECT_NEAR(tracker.Imbalance(), 0.2, 1e-12);
}

TEST(LoadTrackerTest, NormalizedLoadsSumToOne) {
  LoadTracker tracker(5);
  for (int i = 0; i < 123; ++i) tracker.Record(i % 3, i, false);
  const auto loads = tracker.NormalizedLoads();
  double sum = 0;
  for (double l : loads) sum += l;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(loads[4], 0.0);
}

TEST(LoadTrackerTest, HeadTailSplitAddsUp) {
  LoadTracker tracker(3);
  for (int i = 0; i < 60; ++i) tracker.Record(i % 3, 0, /*is_head=*/true);
  for (int i = 0; i < 40; ++i) tracker.Record(i % 3, 1 + i, /*is_head=*/false);
  EXPECT_EQ(tracker.head_messages(), 60u);
  const auto head = tracker.NormalizedHeadLoads();
  const auto tail = tracker.NormalizedTailLoads();
  const auto all = tracker.NormalizedLoads();
  for (int w = 0; w < 3; ++w) {
    EXPECT_NEAR(head[w] + tail[w], all[w], 1e-12);
  }
}

TEST(LoadTrackerTest, MemoryCountsDistinctKeyWorkerPairs) {
  LoadTracker tracker(4, /*track_memory=*/true);
  tracker.Record(0, 7, false);
  tracker.Record(0, 7, false);  // duplicate pair
  tracker.Record(1, 7, false);  // same key, new worker
  tracker.Record(1, 8, false);  // new key
  EXPECT_EQ(tracker.memory_entries(), 3u);
  EXPECT_TRUE(tracker.tracks_memory());
}

TEST(LoadTrackerTest, RescaleOutAddsZeroLoadWorkers) {
  LoadTracker tracker(2);
  for (int i = 0; i < 40; ++i) tracker.Record(i % 2, i, false);
  tracker.Rescale(4);
  EXPECT_EQ(tracker.num_workers(), 4u);
  EXPECT_EQ(tracker.total(), 40u) << "scale-out keeps every recorded message";
  const auto loads = tracker.NormalizedLoads();
  EXPECT_DOUBLE_EQ(loads[0], 0.5);
  EXPECT_DOUBLE_EQ(loads[2], 0.0);
  EXPECT_DOUBLE_EQ(loads[3], 0.0);
  // 20/40 on the max worker, average 1/4: I = 0.5 - 0.25.
  EXPECT_NEAR(tracker.Imbalance(), 0.25, 1e-12);
  tracker.Record(3, 99, false);  // new workers accept load immediately
  EXPECT_EQ(tracker.total(), 41u);
}

TEST(LoadTrackerTest, RescaleInDropsRemovedWorkersCounts) {
  LoadTracker tracker(4);
  for (uint32_t w = 0; w < 4; ++w) {
    for (int i = 0; i < 10; ++i) tracker.Record(w, i, /*is_head=*/w == 3);
  }
  EXPECT_EQ(tracker.total(), 40u);
  EXPECT_EQ(tracker.head_messages(), 10u);
  tracker.Rescale(2);
  EXPECT_EQ(tracker.num_workers(), 2u);
  // Workers 2 and 3 leave the totals: the tracker reports the load carried
  // by the CURRENT worker set.
  EXPECT_EQ(tracker.total(), 20u);
  EXPECT_EQ(tracker.head_messages(), 0u) << "all head load was on worker 3";
  EXPECT_NEAR(tracker.Imbalance(), 0.0, 1e-12);
}

TEST(LoadTrackerTest, MemoryEntriesSurviveRescale) {
  LoadTracker tracker(4, /*track_memory=*/true);
  tracker.Record(3, 7, false);
  tracker.Record(0, 7, false);
  tracker.Rescale(2);
  // State replicas were created regardless of the later scale-in.
  EXPECT_EQ(tracker.memory_entries(), 2u);
  // A pair recorded at the NEW worker count must not alias one recorded at
  // the old count (the count-independent encoding regression).
  tracker.Rescale(4);
  tracker.Record(3, 7, false);
  EXPECT_EQ(tracker.memory_entries(), 2u) << "same (key,worker) pair as before";
  tracker.Record(2, 7, false);
  EXPECT_EQ(tracker.memory_entries(), 3u);
}

TEST(LoadTrackerTest, MemoryTrackingOffByDefault) {
  LoadTracker tracker(2);
  tracker.Record(0, 1, false);
  EXPECT_FALSE(tracker.tracks_memory());
  EXPECT_EQ(tracker.memory_entries(), 0u);
}

}  // namespace
}  // namespace slb
