#include "slb/sim/load_tracker.h"

#include <gtest/gtest.h>

namespace slb {
namespace {

TEST(LoadTrackerTest, EmptyHasZeroImbalance) {
  LoadTracker tracker(4);
  EXPECT_EQ(tracker.total(), 0u);
  EXPECT_DOUBLE_EQ(tracker.Imbalance(), 0.0);
}

TEST(LoadTrackerTest, PerfectBalanceIsZeroImbalance) {
  LoadTracker tracker(4);
  for (uint32_t w = 0; w < 4; ++w) {
    for (int i = 0; i < 25; ++i) tracker.Record(w, i, false);
  }
  EXPECT_EQ(tracker.total(), 100u);
  EXPECT_NEAR(tracker.Imbalance(), 0.0, 1e-12);
}

TEST(LoadTrackerTest, ImbalanceMatchesDefinition) {
  // I = max(L) - avg(L); 70/30 on two workers: 0.7 - 0.5 = 0.2.
  LoadTracker tracker(2);
  for (int i = 0; i < 70; ++i) tracker.Record(0, i, false);
  for (int i = 0; i < 30; ++i) tracker.Record(1, i, false);
  EXPECT_NEAR(tracker.Imbalance(), 0.2, 1e-12);
}

TEST(LoadTrackerTest, NormalizedLoadsSumToOne) {
  LoadTracker tracker(5);
  for (int i = 0; i < 123; ++i) tracker.Record(i % 3, i, false);
  const auto loads = tracker.NormalizedLoads();
  double sum = 0;
  for (double l : loads) sum += l;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(loads[4], 0.0);
}

TEST(LoadTrackerTest, HeadTailSplitAddsUp) {
  LoadTracker tracker(3);
  for (int i = 0; i < 60; ++i) tracker.Record(i % 3, 0, /*is_head=*/true);
  for (int i = 0; i < 40; ++i) tracker.Record(i % 3, 1 + i, /*is_head=*/false);
  EXPECT_EQ(tracker.head_messages(), 60u);
  const auto head = tracker.NormalizedHeadLoads();
  const auto tail = tracker.NormalizedTailLoads();
  const auto all = tracker.NormalizedLoads();
  for (int w = 0; w < 3; ++w) {
    EXPECT_NEAR(head[w] + tail[w], all[w], 1e-12);
  }
}

TEST(LoadTrackerTest, MemoryCountsDistinctKeyWorkerPairs) {
  LoadTracker tracker(4, /*track_memory=*/true);
  tracker.Record(0, 7, false);
  tracker.Record(0, 7, false);  // duplicate pair
  tracker.Record(1, 7, false);  // same key, new worker
  tracker.Record(1, 8, false);  // new key
  EXPECT_EQ(tracker.memory_entries(), 3u);
  EXPECT_TRUE(tracker.tracks_memory());
}

TEST(LoadTrackerTest, RescaleOutAddsZeroLoadWorkers) {
  LoadTracker tracker(2);
  for (int i = 0; i < 40; ++i) tracker.Record(i % 2, i, false);
  tracker.Rescale(4);
  EXPECT_EQ(tracker.num_workers(), 4u);
  EXPECT_EQ(tracker.total(), 40u) << "scale-out keeps every recorded message";
  const auto loads = tracker.NormalizedLoads();
  EXPECT_DOUBLE_EQ(loads[0], 0.5);
  EXPECT_DOUBLE_EQ(loads[2], 0.0);
  EXPECT_DOUBLE_EQ(loads[3], 0.0);
  // 20/40 on the max worker, average 1/4: I = 0.5 - 0.25.
  EXPECT_NEAR(tracker.Imbalance(), 0.25, 1e-12);
  tracker.Record(3, 99, false);  // new workers accept load immediately
  EXPECT_EQ(tracker.total(), 41u);
}

TEST(LoadTrackerTest, RescaleInDropsRemovedWorkersCounts) {
  LoadTracker tracker(4);
  for (uint32_t w = 0; w < 4; ++w) {
    for (int i = 0; i < 10; ++i) tracker.Record(w, i, /*is_head=*/w == 3);
  }
  EXPECT_EQ(tracker.total(), 40u);
  EXPECT_EQ(tracker.head_messages(), 10u);
  tracker.Rescale(2);
  EXPECT_EQ(tracker.num_workers(), 2u);
  // Workers 2 and 3 leave the totals: the tracker reports the load carried
  // by the CURRENT worker set.
  EXPECT_EQ(tracker.total(), 20u);
  EXPECT_EQ(tracker.head_messages(), 0u) << "all head load was on worker 3";
  EXPECT_NEAR(tracker.Imbalance(), 0.0, 1e-12);
}

TEST(LoadTrackerTest, MemoryEntriesSurviveRescale) {
  LoadTracker tracker(4, /*track_memory=*/true);
  tracker.Record(3, 7, false);
  tracker.Record(0, 7, false);
  tracker.Rescale(2);
  // State replicas were created regardless of the later scale-in.
  EXPECT_EQ(tracker.memory_entries(), 2u);
  // A pair recorded at the NEW worker count must not alias one recorded at
  // the old count (the count-independent encoding regression).
  tracker.Rescale(4);
  tracker.Record(3, 7, false);
  EXPECT_EQ(tracker.memory_entries(), 2u) << "same (key,worker) pair as before";
  tracker.Record(2, 7, false);
  EXPECT_EQ(tracker.memory_entries(), 3u);
}

TEST(LoadTrackerTest, MemoryTrackingOffByDefault) {
  LoadTracker tracker(2);
  tracker.Record(0, 1, false);
  EXPECT_FALSE(tracker.tracks_memory());
  EXPECT_EQ(tracker.memory_entries(), 0u);
}

// ---------------------------------------------------------------------------
// Heterogeneous cost accounting (ROADMAP item 2)
// ---------------------------------------------------------------------------

TEST(LoadTrackerCostTest, UnitCostsMakeCostImbalanceEqualCountImbalance) {
  // Default cost = 1.0: the cost metric is the count metric, bit for bit.
  LoadTracker tracker(3);
  for (int i = 0; i < 70; ++i) tracker.Record(0, i, false);
  for (int i = 0; i < 20; ++i) tracker.Record(1, i, false);
  for (int i = 0; i < 10; ++i) tracker.Record(2, i, false);
  EXPECT_DOUBLE_EQ(tracker.CostImbalance(), tracker.Imbalance());
  const auto counts = tracker.NormalizedLoads();
  const auto costs = tracker.NormalizedCostLoads();
  for (int w = 0; w < 3; ++w) EXPECT_DOUBLE_EQ(costs[w], counts[w]);
}

TEST(LoadTrackerCostTest, CostImbalanceDivergesFromCountImbalance) {
  // Equal counts, unequal costs: count imbalance 0, cost imbalance follows
  // the definition max(C)/total - 1/n = 9/10 - 1/2.
  LoadTracker tracker(2);
  tracker.Record(0, 0, false, 9.0);
  tracker.Record(1, 1, false, 1.0);
  EXPECT_NEAR(tracker.Imbalance(), 0.0, 1e-12);
  EXPECT_NEAR(tracker.CostImbalance(), 0.9 - 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(tracker.total_cost(), 10.0);
}

TEST(LoadTrackerCostTest, OutstandingWorkNeverNegative) {
  LoadTracker tracker(2);
  tracker.EnableCostTracking(/*service_rate=*/5.0);
  tracker.Record(0, 0, false, 1.0);
  // The drain since worker 0's arrival (5 per step) far exceeds its backlog;
  // the lazy materialization must clamp at zero, not go negative.
  for (int i = 0; i < 50; ++i) tracker.Record(1, i, false, 1.0);
  for (uint32_t w = 0; w < 2; ++w) {
    EXPECT_GE(tracker.OutstandingWork(w), 0.0) << "worker " << w;
  }
  EXPECT_GE(tracker.TotalOutstanding(), 0.0);
}

TEST(LoadTrackerCostTest, CompletionsConserveTotalCost) {
  // Invariant: recorded = completed + outstanding, at every step, for an
  // adversarial mix of costs and an idle worker that drains lazily.
  LoadTracker tracker(3);
  tracker.EnableCostTracking(/*service_rate=*/0.7);
  double recorded = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double cost = 0.5 + static_cast<double>(i % 7);
    tracker.Record(i % 2, i, false, cost);  // worker 2 never touched again
    recorded += cost;
    ASSERT_NEAR(tracker.completed_cost() + tracker.TotalOutstanding(),
                recorded, 1e-9 * recorded)
        << "step " << i;
  }
  EXPECT_DOUBLE_EQ(tracker.total_cost(), recorded);
  EXPECT_GT(tracker.completed_cost(), 0.0);
}

TEST(LoadTrackerCostTest, PeakOutstandingIsMonotoneAndReached) {
  LoadTracker tracker(2);
  tracker.EnableCostTracking(/*service_rate=*/1.0);
  // Burst of cost 10 every step onto worker 0 with rate 1: backlog climbs
  // by 9 per step, so the peak equals the final outstanding value.
  for (int i = 0; i < 10; ++i) tracker.Record(0, i, false, 10.0);
  EXPECT_DOUBLE_EQ(tracker.peak_outstanding(), tracker.OutstandingWork(0));
  EXPECT_NEAR(tracker.OutstandingWork(0), 10.0 * 10 - 9.0, 1e-12);
  const double peak = tracker.peak_outstanding();
  // Draining (recording elsewhere) must never lower the recorded peak.
  for (int i = 0; i < 200; ++i) tracker.Record(1, i, false, 0.1);
  EXPECT_DOUBLE_EQ(tracker.peak_outstanding(), peak);
}

TEST(LoadTrackerCostTest, RescaleDropsRemovedWorkersCostMassExactly) {
  LoadTracker tracker(4);
  // Distinct, exactly-representable cost mass per worker.
  const double mass[4] = {1.25, 2.5, 8.0, 64.0};
  for (uint32_t w = 0; w < 4; ++w) tracker.Record(w, w, false, mass[w]);
  EXPECT_DOUBLE_EQ(tracker.total_cost(), 1.25 + 2.5 + 8.0 + 64.0);
  tracker.Rescale(2);
  // Workers 2 and 3 leave the totals exactly — no residue, no double drop.
  EXPECT_DOUBLE_EQ(tracker.total_cost(), 1.25 + 2.5);
  EXPECT_DOUBLE_EQ(tracker.costs()[0], 1.25);
  EXPECT_DOUBLE_EQ(tracker.costs()[1], 2.5);
  tracker.Rescale(4);
  EXPECT_DOUBLE_EQ(tracker.total_cost(), 1.25 + 2.5)
      << "re-added workers start with zero cost mass";
  EXPECT_DOUBLE_EQ(tracker.costs()[2], 0.0);
  EXPECT_DOUBLE_EQ(tracker.OutstandingWork(3), 0.0);
}

TEST(LoadTrackerCostTest, CostWeightingLeavesMemoryPairsUntouched) {
  // The (key,worker) encoding — and hence the memory metric — must be
  // identical whether messages are cheap, dear, or unweighted.
  LoadTracker weighted(4, /*track_memory=*/true);
  LoadTracker unweighted(4, /*track_memory=*/true);
  weighted.EnableCostTracking(/*service_rate=*/2.0);
  for (int i = 0; i < 100; ++i) {
    weighted.Record(i % 4, i % 11, false, 1.0 + static_cast<double>(i % 5));
    unweighted.Record(i % 4, i % 11, false);
  }
  EXPECT_EQ(weighted.memory_entries(), unweighted.memory_entries());
  EXPECT_EQ(weighted.total(), unweighted.total());
}

TEST(LoadTrackerCostTest, ZeroCostStreamHasZeroCostImbalance) {
  LoadTracker tracker(2);
  EXPECT_DOUBLE_EQ(tracker.CostImbalance(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.total_cost(), 0.0);
  const auto costs = tracker.NormalizedCostLoads();
  EXPECT_DOUBLE_EQ(costs[0], 0.0);
  EXPECT_DOUBLE_EQ(costs[1], 0.0);
}

}  // namespace
}  // namespace slb
