#include "slb/sim/migration_tracker.h"

#include <gtest/gtest.h>

#include <tuple>

namespace slb {
namespace {

RescaleCostModel Cost(uint64_t bytes_per_key, uint32_t rate) {
  RescaleCostModel cost;
  cost.state_bytes_per_key = bytes_per_key;
  cost.migration_keys_per_message = rate;
  return cost;
}

TEST(MigrationTrackerTest, NoRescaleNoCost) {
  MigrationTracker tracker(Cost(64, 4));
  for (uint64_t seq = 0; seq < 100; ++seq) {
    tracker.OnMessage(seq, seq % 10, static_cast<uint32_t>(seq % 3));
  }
  EXPECT_EQ(tracker.keys_migrated(), 0u);
  EXPECT_EQ(tracker.keys_checked(), 0u);
  EXPECT_EQ(tracker.stalled_messages(), 0u);
  EXPECT_EQ(tracker.rescale_events(), 0u);
  EXPECT_EQ(tracker.moved_key_fraction(), 0.0);
}

TEST(MigrationTrackerTest, ScaleOutMigratesLazilyOnFirstContact) {
  MigrationTracker tracker(Cost(100, 8));
  // Keys 0..3 homed on workers 0..3 before the event.
  for (uint64_t key = 0; key < 4; ++key) {
    tracker.OnMessage(key, key, static_cast<uint32_t>(key));
  }
  tracker.OnRescale(4, 4, 6);
  EXPECT_EQ(tracker.rescale_events(), 1u);
  EXPECT_EQ(tracker.keys_migrated(), 0u) << "scale-out moves nothing eagerly";

  // Key 0 re-routes to a NEW worker: one recheck, one migration.
  tracker.OnMessage(4, 0, 5);
  EXPECT_EQ(tracker.keys_checked(), 1u);
  EXPECT_EQ(tracker.keys_migrated(), 1u);
  EXPECT_EQ(tracker.state_bytes_migrated(), 100u);

  // Key 1 re-routes to its OLD worker: rechecked, no migration.
  tracker.OnMessage(5, 1, 1);
  EXPECT_EQ(tracker.keys_checked(), 2u);
  EXPECT_EQ(tracker.keys_migrated(), 1u);

  // Key 0 again: epoch already checked — no double counting.
  tracker.OnMessage(6, 0, 5);
  EXPECT_EQ(tracker.keys_checked(), 2u);
  EXPECT_EQ(tracker.keys_migrated(), 1u);

  // A key first seen AFTER the event has no state to move.
  tracker.OnMessage(7, 99, 4);
  EXPECT_EQ(tracker.keys_checked(), 2u);
  EXPECT_EQ(tracker.keys_migrated(), 1u);

  EXPECT_DOUBLE_EQ(tracker.moved_key_fraction(), 0.5);
}

TEST(MigrationTrackerTest, ScaleInMigratesEagerlyAndStalls) {
  // Drain rate 1 key/message makes stall arithmetic exact.
  MigrationTracker tracker(Cost(64, 1));
  // Keys 10, 11, 12 homed on workers 0, 2, 3 of a 4-worker set.
  tracker.OnMessage(0, 10, 0);
  tracker.OnMessage(1, 11, 2);
  tracker.OnMessage(2, 12, 3);
  // Remove workers 2 and 3: keys 11 and 12 hand off eagerly at seq 3.
  tracker.OnRescale(3, 4, 2);
  EXPECT_EQ(tracker.keys_checked(), 3u) << "every live key's placement checked";
  EXPECT_EQ(tracker.keys_migrated(), 2u);
  EXPECT_EQ(tracker.state_bytes_migrated(), 128u);

  // FIFO at 1 key/message from seq 3: key 11 completes at 4, key 12 at 5.
  tracker.OnMessage(3, 11, 1);  // stalled (available_at = 4)
  tracker.OnMessage(4, 11, 1);  // available
  tracker.OnMessage(4, 12, 0);  // stalled (available_at = 5)
  tracker.OnMessage(5, 12, 0);  // available
  tracker.OnMessage(5, 10, 0);  // never migrated, never stalled
  EXPECT_EQ(tracker.stalled_messages(), 2u);
}

TEST(MigrationTrackerTest, HandoffChannelBacklogGrowsCompletionTimes) {
  // Rate 2 keys/message, 6 keys enqueued at seq 10: slots 20..25, completing
  // at messages 11, 11, 12, 12, 13, 13 — a backlog, not an instant drain.
  MigrationTracker tracker(Cost(1, 2));
  for (uint64_t key = 0; key < 6; ++key) {
    tracker.OnMessage(key, key, 3);  // all state on worker 3
  }
  tracker.OnRescale(10, 4, 3);
  EXPECT_EQ(tracker.keys_migrated(), 6u);
  // All 6 keys routed again right at seq 10-11: first four stall.
  tracker.OnMessage(10, 0, 0);  // available_at 11 -> stalled
  tracker.OnMessage(10, 1, 0);  // available_at 11 -> stalled
  tracker.OnMessage(11, 2, 0);  // available_at 12 -> stalled
  tracker.OnMessage(11, 3, 0);  // available_at 12 -> stalled
  tracker.OnMessage(12, 4, 0);  // available_at 13 -> stalled
  tracker.OnMessage(13, 5, 0);  // available_at 13 -> fine
  EXPECT_EQ(tracker.stalled_messages(), 5u);
}

TEST(MigrationTrackerTest, PkgStyleReplicasMigrateOnlyWhenAllHomesRemoved) {
  MigrationTracker tracker(Cost(64, 4));
  // Key 7 has state on workers 1 AND 5 (a PKG tail key).
  tracker.OnMessage(0, 7, 1);
  tracker.OnMessage(1, 7, 5);
  // Removing worker 5 still hands off (state on a removed worker moves even
  // if another replica survives — the removed copy must drain somewhere).
  tracker.OnRescale(2, 6, 5);
  EXPECT_EQ(tracker.keys_migrated(), 1u);
  // The surviving replica on worker 1 is intact: routing there after the
  // handoff window costs nothing further.
  tracker.OnMessage(10, 7, 1);
  EXPECT_EQ(tracker.keys_migrated(), 1u);
  EXPECT_EQ(tracker.stalled_messages(), 0u);
}

TEST(MigrationTrackerTest, DeterministicAcrossInsertionOrders) {
  // The eager scale-in sorts affected keys before assigning FIFO slots, so
  // the aggregate counters cannot depend on hash-map iteration order. Feed
  // the same key set in two different orders and compare everything.
  auto run = [](bool reversed) {
    MigrationTracker tracker(Cost(64, 2));
    for (int i = 0; i < 50; ++i) {
      const uint64_t key = reversed ? 49 - i : i;
      tracker.OnMessage(static_cast<uint64_t>(i), key,
                        static_cast<uint32_t>(key % 8));
    }
    tracker.OnRescale(50, 8, 4);
    for (int i = 50; i < 150; ++i) {
      tracker.OnMessage(static_cast<uint64_t>(i), static_cast<uint64_t>(i % 50),
                        static_cast<uint32_t>(i % 4));
    }
    return std::tuple(tracker.keys_migrated(), tracker.keys_checked(),
                      tracker.stalled_messages(),
                      tracker.state_bytes_migrated());
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace slb
