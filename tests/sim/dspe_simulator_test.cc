#include "slb/sim/dspe_simulator.h"

#include <gtest/gtest.h>

namespace slb {
namespace {

DspeConfig BaseConfig(AlgorithmKind algo) {
  DspeConfig config;
  config.algorithm = algo;
  config.partitioner.num_workers = 20;
  config.partitioner.hash_seed = 5;
  config.num_sources = 8;
  config.num_messages = 20000;
  config.zipf_exponent = 1.4;
  config.num_keys = 2000;
  config.worker_service_ms = 1.0;
  config.transport_rate_per_s = 4000;
  config.max_pending_per_source = 50;
  config.seed = 11;
  return config;
}

TEST(DspeSimTest, RejectsBadConfig) {
  DspeConfig config = BaseConfig(AlgorithmKind::kShuffleGrouping);
  config.num_sources = 0;
  EXPECT_FALSE(RunDspeSimulation(config).ok());
  config = BaseConfig(AlgorithmKind::kShuffleGrouping);
  config.worker_service_ms = 0;
  EXPECT_FALSE(RunDspeSimulation(config).ok());
  config = BaseConfig(AlgorithmKind::kShuffleGrouping);
  config.max_pending_per_source = 0;
  EXPECT_FALSE(RunDspeSimulation(config).ok());
}

TEST(DspeSimTest, CompletesEveryTuple) {
  auto result = RunDspeSimulation(BaseConfig(AlgorithmKind::kPkg));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->completed, 20000u);
  EXPECT_GT(result->makespan_s, 0.0);
}

TEST(DspeSimTest, LatencyIsAtLeastServicePlusTransport) {
  auto result = RunDspeSimulation(BaseConfig(AlgorithmKind::kShuffleGrouping));
  ASSERT_TRUE(result.ok());
  // Every tuple pays transport (0.25ms) + worker service (1ms).
  EXPECT_GE(result->latency_p50_ms, 1.25 - 1e-9);
  EXPECT_GE(result->latency_max_ms, result->latency_p99_ms);
  EXPECT_GE(result->latency_p99_ms, result->latency_p50_ms);
}

TEST(DspeSimTest, BalancedThroughputIsTransportBound) {
  // 20 workers x 1000/s capacity >> 4000/s transport: SG must saturate the
  // transport stage.
  auto result = RunDspeSimulation(BaseConfig(AlgorithmKind::kShuffleGrouping));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->throughput_per_s, 4000.0, 250.0);
}

TEST(DspeSimTest, SkewCollapsesKeyGroupingThroughput) {
  DspeConfig config = BaseConfig(AlgorithmKind::kKeyGrouping);
  config.zipf_exponent = 2.0;  // p1 ~ 0.6 of the stream on one worker
  auto kg = RunDspeSimulation(config);
  config.algorithm = AlgorithmKind::kShuffleGrouping;
  auto sg = RunDspeSimulation(config);
  ASSERT_TRUE(kg.ok());
  ASSERT_TRUE(sg.ok());
  // KG is bottlenecked by the hot worker: ~1000/0.6 ~= 1667/s.
  EXPECT_LT(kg->throughput_per_s, 2300.0);
  EXPECT_GT(sg->throughput_per_s, 1.5 * kg->throughput_per_s);
}

TEST(DspeSimTest, SkewInflatesKeyGroupingLatency) {
  DspeConfig config = BaseConfig(AlgorithmKind::kKeyGrouping);
  config.zipf_exponent = 2.0;
  auto kg = RunDspeSimulation(config);
  config.algorithm = AlgorithmKind::kWChoices;
  auto wc = RunDspeSimulation(config);
  ASSERT_TRUE(kg.ok());
  ASSERT_TRUE(wc.ok());
  EXPECT_GT(kg->max_worker_avg_latency_ms, 3 * wc->max_worker_avg_latency_ms);
}

TEST(DspeSimTest, HeadAwareAlgorithmsMatchShuffleThroughput) {
  DspeConfig config = BaseConfig(AlgorithmKind::kShuffleGrouping);
  config.zipf_exponent = 2.0;
  auto sg = RunDspeSimulation(config);
  config.algorithm = AlgorithmKind::kDChoices;
  auto dc = RunDspeSimulation(config);
  config.algorithm = AlgorithmKind::kWChoices;
  auto wc = RunDspeSimulation(config);
  ASSERT_TRUE(sg.ok());
  ASSERT_TRUE(dc.ok());
  ASSERT_TRUE(wc.ok());
  EXPECT_GT(dc->throughput_per_s, 0.85 * sg->throughput_per_s);
  EXPECT_GT(wc->throughput_per_s, 0.85 * sg->throughput_per_s);
}

TEST(DspeSimTest, DeterministicForFixedSeed) {
  auto a = RunDspeSimulation(BaseConfig(AlgorithmKind::kPkg));
  auto b = RunDspeSimulation(BaseConfig(AlgorithmKind::kPkg));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->throughput_per_s, b->throughput_per_s);
  EXPECT_DOUBLE_EQ(a->latency_p99_ms, b->latency_p99_ms);
}

TEST(DspeSimTest, WorkerLatencyPercentilesOrdered) {
  auto result = RunDspeSimulation(BaseConfig(AlgorithmKind::kPkg));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->p50_worker_avg_latency_ms, result->p95_worker_avg_latency_ms);
  EXPECT_LE(result->p95_worker_avg_latency_ms, result->p99_worker_avg_latency_ms);
  EXPECT_LE(result->p99_worker_avg_latency_ms,
            result->max_worker_avg_latency_ms + 1e-9);
}

TEST(DspeSimTest, SmallRunSingleSourceSingleWorker) {
  DspeConfig config = BaseConfig(AlgorithmKind::kShuffleGrouping);
  config.num_sources = 1;
  config.partitioner.num_workers = 1;
  config.num_messages = 100;
  auto result = RunDspeSimulation(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 100u);
  // Single worker at 1ms/tuple: makespan >= 0.1s.
  EXPECT_GE(result->makespan_s, 0.099);
}

}  // namespace
}  // namespace slb
