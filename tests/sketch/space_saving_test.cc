#include "slb/sketch/space_saving.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "slb/common/rng.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving ss(10);
  for (int i = 0; i < 5; ++i) {
    for (int r = 0; r <= i; ++r) ss.UpdateAndEstimate(i);
  }
  // Key i occurred i+1 times; capacity never exceeded, so counts are exact.
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ss.Estimate(i), i + 1);
    EXPECT_EQ(ss.GuaranteedCount(i), i + 1);
  }
  EXPECT_EQ(ss.total(), 15u);
  EXPECT_EQ(ss.Estimate(999), 0u) << "unknown key, structure not full";
}

TEST(SpaceSavingTest, UpdateReturnsNewCount) {
  SpaceSaving ss(4);
  EXPECT_EQ(ss.UpdateAndEstimate(7), 1u);
  EXPECT_EQ(ss.UpdateAndEstimate(7), 2u);
  EXPECT_EQ(ss.UpdateAndEstimate(7), 3u);
}

TEST(SpaceSavingTest, EvictionChargesError) {
  SpaceSaving ss(2);
  ss.UpdateAndEstimate(1);  // {1:1}
  ss.UpdateAndEstimate(1);  // {1:2}
  ss.UpdateAndEstimate(2);  // {1:2, 2:1}
  // 3 evicts 2 (the min, count 1): count = 2, error = 1.
  EXPECT_EQ(ss.UpdateAndEstimate(3), 2u);
  EXPECT_EQ(ss.GuaranteedCount(3), 1u);
  EXPECT_EQ(ss.Estimate(2), ss.min_count()) << "evicted key reports min bound";
}

TEST(SpaceSavingTest, OverestimateInvariantOnAdversarialStream) {
  // Rotating distinct keys with a few hot ones; counts must never
  // underestimate and the error must be bounded by N/capacity.
  const size_t capacity = 50;
  SpaceSaving ss(capacity);
  std::map<uint64_t, uint64_t> truth;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    uint64_t key;
    if (rng.NextBool(0.3)) {
      key = rng.NextBounded(5);  // hot set
    } else {
      key = 1000 + rng.NextBounded(2000);  // churn
    }
    ++truth[key];
    ss.UpdateAndEstimate(key);
  }
  const uint64_t bound = ss.total() / capacity;
  for (const HeavyKey& hk : ss.Counters()) {
    const uint64_t true_count = truth[hk.key];
    EXPECT_GE(hk.count, true_count) << "key " << hk.key;
    EXPECT_LE(hk.count - hk.error, true_count) << "key " << hk.key;
    EXPECT_LE(hk.error, bound) << "error exceeds N/k bound";
  }
}

TEST(SpaceSavingTest, HeavyHittersIsSupersetOfTrueHeavyKeys) {
  // Classic guarantee: every key with true frequency > N/capacity is
  // monitored, hence reported at phi <= 1/capacity.
  const size_t capacity = 100;
  SpaceSaving ss(capacity);
  ZipfDistribution zipf(1.5, 10000);
  Rng rng(11);
  std::map<uint64_t, uint64_t> truth;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const uint64_t key = zipf.Sample(&rng);
    ++truth[key];
    ss.UpdateAndEstimate(key);
  }
  const double phi = 0.02;
  const auto reported = ss.HeavyHitters(phi);
  std::vector<uint64_t> reported_keys;
  for (const auto& hk : reported) reported_keys.push_back(hk.key);
  for (const auto& [key, count] : truth) {
    if (static_cast<double>(count) >= phi * n) {
      EXPECT_NE(std::find(reported_keys.begin(), reported_keys.end(), key),
                reported_keys.end())
          << "true heavy key " << key << " (count " << count << ") missed";
    }
  }
}

TEST(SpaceSavingTest, HeavyHittersSortedDescending) {
  SpaceSaving ss(10);
  Rng rng(3);
  ZipfDistribution zipf(1.2, 100);
  for (int i = 0; i < 10000; ++i) ss.UpdateAndEstimate(zipf.Sample(&rng));
  const auto hh = ss.HeavyHitters(0.01);
  for (size_t i = 1; i < hh.size(); ++i) {
    EXPECT_GE(hh[i - 1].count, hh[i].count);
  }
}

TEST(SpaceSavingTest, CapacityOneDegenerates) {
  SpaceSaving ss(1);
  ss.UpdateAndEstimate(1);
  ss.UpdateAndEstimate(2);
  ss.UpdateAndEstimate(3);
  EXPECT_EQ(ss.total(), 3u);
  EXPECT_EQ(ss.memory_counters(), 1u);
  // The single counter's count equals the stream length (all mass).
  EXPECT_EQ(ss.Counters()[0].count, 3u);
  EXPECT_EQ(ss.Counters()[0].key, 3u);
}

TEST(SpaceSavingTest, ResetClearsState) {
  SpaceSaving ss(8);
  for (int i = 0; i < 100; ++i) ss.UpdateAndEstimate(i % 10);
  ss.Reset();
  EXPECT_EQ(ss.total(), 0u);
  EXPECT_EQ(ss.memory_counters(), 0u);
  EXPECT_EQ(ss.min_count(), 0u);
  EXPECT_EQ(ss.UpdateAndEstimate(5), 1u);
}

TEST(SpaceSavingTest, MonitorsAtMostCapacityKeys) {
  SpaceSaving ss(16);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) ss.UpdateAndEstimate(rng.NextBounded(1000));
  EXPECT_LE(ss.memory_counters(), 16u);
}

TEST(SpaceSavingTest, MinCountTracksColdestCounter) {
  SpaceSaving ss(3);
  ss.UpdateAndEstimate(1);
  ss.UpdateAndEstimate(1);
  ss.UpdateAndEstimate(2);
  ss.UpdateAndEstimate(3);
  EXPECT_EQ(ss.min_count(), 1u);
  ss.UpdateAndEstimate(2);
  ss.UpdateAndEstimate(3);
  EXPECT_EQ(ss.min_count(), 2u);
}

TEST(SpaceSavingMergeTest, DisjointStreamsKeepCounts) {
  SpaceSaving a(10);
  SpaceSaving b(10);
  for (int i = 0; i < 5; ++i) a.UpdateAndEstimate(1);
  for (int i = 0; i < 3; ++i) b.UpdateAndEstimate(2);
  a.Merge(b);
  EXPECT_EQ(a.total(), 8u);
  // Neither summary was full, so counts stay exact after merging.
  EXPECT_EQ(a.Estimate(1), 5u);
  EXPECT_EQ(a.Estimate(2), 3u);
}

TEST(SpaceSavingMergeTest, OverlappingStreamsAddCounts) {
  SpaceSaving a(10);
  SpaceSaving b(10);
  for (int i = 0; i < 5; ++i) a.UpdateAndEstimate(42);
  for (int i = 0; i < 7; ++i) b.UpdateAndEstimate(42);
  a.Merge(b);
  EXPECT_EQ(a.Estimate(42), 12u);
  EXPECT_EQ(a.GuaranteedCount(42), 12u);
}

TEST(SpaceSavingMergeTest, PreservesOverestimateInvariant) {
  // Split one stream across two summaries; the merged estimates must still
  // upper-bound the true counts.
  const size_t capacity = 32;
  SpaceSaving a(capacity);
  SpaceSaving b(capacity);
  ZipfDistribution zipf(1.4, 5000);
  Rng rng(21);
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 40000; ++i) {
    const uint64_t key = zipf.Sample(&rng);
    ++truth[key];
    (i % 2 == 0 ? a : b).UpdateAndEstimate(key);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), 40000u);
  EXPECT_LE(a.memory_counters(), capacity);
  for (const HeavyKey& hk : a.Counters()) {
    EXPECT_GE(hk.count, truth[hk.key]) << "merged estimate must not undercount";
  }
  // The hottest key must survive the merge.
  EXPECT_GT(a.Estimate(0), 0u);
}

TEST(SpaceSavingMergeTest, MergeIntoEmpty) {
  SpaceSaving a(10);
  SpaceSaving b(10);
  for (int i = 0; i < 4; ++i) b.UpdateAndEstimate(9);
  a.Merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.Estimate(9), 4u);
}

TEST(SpaceSavingTest, StreamSummaryHandlesLongIncrementChains) {
  // One key incremented many times walks the bucket list upward; interleave
  // with churn to exercise bucket create/free.
  SpaceSaving ss(4);
  for (int round = 0; round < 1000; ++round) {
    ss.UpdateAndEstimate(1);
    if (round % 3 == 0) ss.UpdateAndEstimate(2 + (round % 5));
  }
  EXPECT_GE(ss.Estimate(1), 1000u);
  EXPECT_EQ(ss.total(), 1000u + 334u);
}

}  // namespace
}  // namespace slb
