// Cross-cutting property tests run against every FrequencyEstimator
// implementation: the guarantees the head-detection logic relies on.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "slb/common/rng.h"
#include "slb/sketch/count_min.h"
#include "slb/sketch/frequency_estimator.h"
#include "slb/sketch/lossy_counting.h"
#include "slb/sketch/misra_gries.h"
#include "slb/sketch/space_saving.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

enum class Kind { kSpaceSaving, kMisraGries, kLossyCounting, kCountMin };

std::unique_ptr<FrequencyEstimator> Make(Kind kind) {
  switch (kind) {
    case Kind::kSpaceSaving:
      return std::make_unique<SpaceSaving>(200);
    case Kind::kMisraGries:
      return std::make_unique<MisraGries>(200);
    case Kind::kLossyCounting:
      return std::make_unique<LossyCounting>(1.0 / 200);
    case Kind::kCountMin:
      return std::make_unique<CountMin>(CountMin::ForError(1.0 / 200, 1e-3, 200));
  }
  return nullptr;
}

class EstimatorsTest : public ::testing::TestWithParam<Kind> {};

TEST_P(EstimatorsTest, TotalCountsUpdates) {
  auto est = Make(GetParam());
  Rng rng(1);
  for (int i = 0; i < 1234; ++i) est->UpdateAndEstimate(rng.NextBounded(50));
  EXPECT_EQ(est->total(), 1234u);
}

TEST_P(EstimatorsTest, EstimateNeverUndercountsWithinBound) {
  // All four sketches guarantee: true - bound <= ... <= Estimate, where the
  // implementations here are tuned for error bound <= N/200 (+ slack for
  // probabilistic CMS).
  auto est = Make(GetParam());
  ZipfDistribution zipf(1.3, 2000);
  Rng rng(7);
  std::map<uint64_t, uint64_t> truth;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const uint64_t key = zipf.Sample(&rng);
    ++truth[key];
    est->UpdateAndEstimate(key);
  }
  const double bound = 2.0 * n / 200.0;  // generous: 2x the design error
  for (const auto& [key, count] : truth) {
    if (count < 100) continue;  // only meaningful for clearly-tracked keys
    const uint64_t estimate = est->Estimate(key);
    EXPECT_GE(static_cast<double>(estimate), static_cast<double>(count) - bound)
        << est->name() << " undercounts key " << key;
    EXPECT_LE(static_cast<double>(estimate), static_cast<double>(count) + bound)
        << est->name() << " overcounts key " << key;
  }
}

TEST_P(EstimatorsTest, HeavyHittersFindsTheHead) {
  // Every key with true frequency >= 2*phi must be reported at threshold phi
  // (phi chosen well above the design error so all sketches must succeed).
  auto est = Make(GetParam());
  ZipfDistribution zipf(1.8, 5000);
  Rng rng(13);
  std::map<uint64_t, uint64_t> truth;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const uint64_t key = zipf.Sample(&rng);
    ++truth[key];
    est->UpdateAndEstimate(key);
  }
  const double phi = 0.02;
  const auto hh = est->HeavyHitters(phi);
  for (const auto& [key, count] : truth) {
    if (static_cast<double>(count) >= 2 * phi * n) {
      bool found = false;
      for (const auto& hk : hh) found |= (hk.key == key);
      EXPECT_TRUE(found) << est->name() << " missed hot key " << key
                         << " with count " << count;
    }
  }
}

TEST_P(EstimatorsTest, ResetYieldsEmptyState) {
  auto est = Make(GetParam());
  for (int i = 0; i < 1000; ++i) est->UpdateAndEstimate(i % 7);
  est->Reset();
  EXPECT_EQ(est->total(), 0u);
  EXPECT_TRUE(est->HeavyHitters(0.01).empty());
}

TEST_P(EstimatorsTest, UpdateReturnValueMatchesEstimate) {
  auto est = Make(GetParam());
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.NextBounded(100);
    const uint64_t returned = est->UpdateAndEstimate(key);
    EXPECT_EQ(returned, est->Estimate(key)) << est->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllSketches, EstimatorsTest,
                         ::testing::Values(Kind::kSpaceSaving, Kind::kMisraGries,
                                           Kind::kLossyCounting, Kind::kCountMin),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kSpaceSaving:
                               return std::string("SpaceSaving");
                             case Kind::kMisraGries:
                               return std::string("MisraGries");
                             case Kind::kLossyCounting:
                               return std::string("LossyCounting");
                             case Kind::kCountMin:
                               return std::string("CountMin");
                           }
                           return std::string("?");
                         });

TEST(MisraGriesTest, DecrementRoundsBoundError) {
  MisraGries mg(4);
  // 8 distinct keys over capacity 4 force decrement rounds.
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t k = 0; k < 8; ++k) mg.UpdateAndEstimate(k);
  }
  EXPECT_LE(mg.decrements(), mg.total() / 4);
  EXPECT_LE(mg.memory_counters(), 4u);
}

TEST(MisraGriesTest, HotKeySurvivesChurn) {
  MisraGries mg(8);
  Rng rng(3);
  for (int i = 0; i < 30000; ++i) {
    mg.UpdateAndEstimate(rng.NextBool(0.4) ? 7ULL : 100 + rng.NextBounded(5000));
  }
  // Key 7 holds ~40% of the stream; it must be tracked with a large count.
  EXPECT_GT(mg.Estimate(7), 30000u * 0.4 * 0.5);
}

TEST(LossyCountingTest, WindowWidthFromEpsilon) {
  LossyCounting lc(0.01);
  EXPECT_EQ(lc.window_width(), 100u);
}

TEST(LossyCountingTest, PrunesColdEntries) {
  LossyCounting lc(0.1);  // window 10
  // 1000 distinct singletons: memory must stay ~window-bounded, far below
  // the number of distinct keys.
  for (uint64_t k = 0; k < 1000; ++k) lc.UpdateAndEstimate(k);
  EXPECT_LT(lc.memory_counters(), 50u);
}

TEST(CountMinTest, DimensionsFromErrorSpec) {
  const CountMin cm = CountMin::ForError(0.01, 0.01, 16);
  EXPECT_GE(cm.width(), 272u);  // ceil(e / 0.01)
  EXPECT_GE(cm.depth(), 5u);    // ceil(ln 100)
}

TEST(CountMinTest, NeverUndercounts) {
  CountMin cm(128, 4, 32);
  Rng rng(5);
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(500);
    ++truth[key];
    cm.UpdateAndEstimate(key);
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(cm.Estimate(key), count) << "CMS is one-sided";
  }
}

}  // namespace
}  // namespace slb
