#include "slb/sketch/decaying_space_saving.h"

#include <gtest/gtest.h>

#include "slb/common/rng.h"
#include "slb/core/partitioner.h"
#include "slb/sim/load_tracker.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

TEST(ScaleDownTest, HalvesCountsAndTotal) {
  SpaceSaving ss(8);
  for (int i = 0; i < 10; ++i) ss.UpdateAndEstimate(1);
  for (int i = 0; i < 4; ++i) ss.UpdateAndEstimate(2);
  ss.ScaleDown(2);
  EXPECT_EQ(ss.Estimate(1), 5u);
  EXPECT_EQ(ss.Estimate(2), 2u);
  EXPECT_EQ(ss.total(), 7u);
}

TEST(ScaleDownTest, DropsDecayedOutCounters) {
  SpaceSaving ss(8);
  ss.UpdateAndEstimate(1);
  for (int i = 0; i < 9; ++i) ss.UpdateAndEstimate(2);
  ss.ScaleDown(4);  // key 1 count 1/4 -> 0, dropped
  EXPECT_EQ(ss.memory_counters(), 1u);
  EXPECT_EQ(ss.Estimate(2), 2u);
}

TEST(ScaleDownTest, DivisorOneIsIdentity) {
  SpaceSaving ss(4);
  for (int i = 0; i < 6; ++i) ss.UpdateAndEstimate(9);
  ss.ScaleDown(1);
  EXPECT_EQ(ss.Estimate(9), 6u);
  EXPECT_EQ(ss.total(), 6u);
}

TEST(ScaleDownTest, StructureStillUpdatableAfterRebuild) {
  SpaceSaving ss(4);
  for (int i = 0; i < 100; ++i) ss.UpdateAndEstimate(i % 6);
  ss.ScaleDown(2);
  // Keep updating; stream-summary invariants must hold (min eviction etc.).
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) ss.UpdateAndEstimate(rng.NextBounded(50));
  EXPECT_LE(ss.memory_counters(), 4u);
  EXPECT_GT(ss.min_count(), 0u);
}

TEST(DecayingSpaceSavingTest, DecaysOnSchedule) {
  DecayingSpaceSaving dss(16, /*half_life=*/100);
  for (int i = 0; i < 350; ++i) dss.UpdateAndEstimate(i % 4);
  EXPECT_EQ(dss.decays_performed(), 3u);
  EXPECT_LT(dss.total(), 350u) << "total must be decayed";
}

TEST(DecayingSpaceSavingTest, RelativeFrequenciesPreserved) {
  // Key 0 carries ~50% of the stream; after several decays its estimated
  // share (count/total) must still be ~50%.
  DecayingSpaceSaving dss(64, 1000);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    dss.UpdateAndEstimate(rng.NextBool(0.5) ? 0 : 1 + rng.NextBounded(500));
  }
  const double share = static_cast<double>(dss.Estimate(0)) /
                       static_cast<double>(dss.total());
  EXPECT_NEAR(share, 0.5, 0.08);
}

TEST(DecayingSpaceSavingTest, ForgetsColdKeysFasterThanPlainSketch) {
  // Phase 1: key A hot. Phase 2: key B hot. The decaying sketch's estimate
  // for B must overtake A soon after the flip; the plain sketch needs as
  // long as phase 1 lasted.
  const uint64_t kA = 111;
  const uint64_t kB = 222;
  DecayingSpaceSaving decaying(64, 2000);
  SpaceSaving plain(64);
  Rng rng(9);
  auto feed = [&](uint64_t hot, int count) {
    for (int i = 0; i < count; ++i) {
      const uint64_t key = rng.NextBool(0.5) ? hot : 1000 + rng.NextBounded(300);
      decaying.UpdateAndEstimate(key);
      plain.UpdateAndEstimate(key);
    }
  };
  feed(kA, 20000);
  feed(kB, 6000);  // 30% as long as phase 1
  EXPECT_GT(decaying.Estimate(kB), decaying.Estimate(kA))
      << "decaying sketch must have switched to the new hot key";
  EXPECT_LT(plain.Estimate(kB), plain.Estimate(kA))
      << "plain sketch is still dominated by history";
}

TEST(DecayingSpaceSavingTest, ResetClearsDecayState) {
  DecayingSpaceSaving dss(8, 10);
  for (int i = 0; i < 100; ++i) dss.UpdateAndEstimate(1);
  dss.Reset();
  EXPECT_EQ(dss.total(), 0u);
  EXPECT_EQ(dss.decays_performed(), 0u);
}

TEST(DecayingSpaceSavingTest, WorksInsideDChoicesOnDriftingStream) {
  PartitionerOptions options;
  options.num_workers = 20;
  options.hash_seed = 5;
  options.sketch = SketchKind::kDecayingSpaceSaving;
  auto dc = CreatePartitioner(AlgorithmKind::kDChoices, options);
  ASSERT_TRUE(dc.ok());
  Rng rng(11);
  LoadTracker tracker(20);
  const int m = 120000;
  for (int i = 0; i < m; ++i) {
    // Hot key flips identity every 30k messages.
    const uint64_t hot = 5000 + static_cast<uint64_t>(i / 30000);
    const uint64_t key = rng.NextBool(0.4) ? hot : rng.NextBounded(2000);
    const uint32_t w = dc.value()->Route(key);
    tracker.Record(w, key, dc.value()->last_was_head());
  }
  // Cumulative I(m) includes the pre-detection prefix after each identity
  // flip; the bound to clear decisively is PKG's pinned-hot-key level
  // (0.4/2 - 1/20 = 0.15).
  EXPECT_LT(tracker.Imbalance(), 0.06);
}

}  // namespace
}  // namespace slb
