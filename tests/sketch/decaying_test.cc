#include "slb/sketch/decaying_space_saving.h"

#include <gtest/gtest.h>

#include "slb/common/rng.h"
#include "slb/core/head_tail_partitioner.h"
#include "slb/core/partitioner.h"
#include "slb/sim/load_tracker.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

TEST(ScaleDownTest, HalvesCountsAndTotal) {
  SpaceSaving ss(8);
  for (int i = 0; i < 10; ++i) ss.UpdateAndEstimate(1);
  for (int i = 0; i < 4; ++i) ss.UpdateAndEstimate(2);
  ss.ScaleDown(2);
  EXPECT_EQ(ss.Estimate(1), 5u);
  EXPECT_EQ(ss.Estimate(2), 2u);
  EXPECT_EQ(ss.total(), 7u);
}

TEST(ScaleDownTest, DropsDecayedOutCounters) {
  SpaceSaving ss(8);
  ss.UpdateAndEstimate(1);
  for (int i = 0; i < 9; ++i) ss.UpdateAndEstimate(2);
  ss.ScaleDown(4);  // key 1 count 1/4 -> 0, dropped
  EXPECT_EQ(ss.memory_counters(), 1u);
  EXPECT_EQ(ss.Estimate(2), 2u);
}

TEST(ScaleDownTest, DivisorOneIsIdentity) {
  SpaceSaving ss(4);
  for (int i = 0; i < 6; ++i) ss.UpdateAndEstimate(9);
  ss.ScaleDown(1);
  EXPECT_EQ(ss.Estimate(9), 6u);
  EXPECT_EQ(ss.total(), 6u);
}

TEST(ScaleDownTest, StructureStillUpdatableAfterRebuild) {
  SpaceSaving ss(4);
  for (int i = 0; i < 100; ++i) ss.UpdateAndEstimate(i % 6);
  ss.ScaleDown(2);
  // Keep updating; stream-summary invariants must hold (min eviction etc.).
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) ss.UpdateAndEstimate(rng.NextBounded(50));
  EXPECT_LE(ss.memory_counters(), 4u);
  EXPECT_GT(ss.min_count(), 0u);
}

TEST(DecayingSpaceSavingTest, DecaysOnSchedule) {
  DecayingSpaceSaving dss(16, /*half_life=*/100);
  for (int i = 0; i < 350; ++i) dss.UpdateAndEstimate(i % 4);
  EXPECT_EQ(dss.decays_performed(), 3u);
  EXPECT_LT(dss.total(), 350u) << "total must be decayed";
}

TEST(DecayingSpaceSavingTest, RelativeFrequenciesPreserved) {
  // Key 0 carries ~50% of the stream; after several decays its estimated
  // share (count/total) must still be ~50%.
  DecayingSpaceSaving dss(64, 1000);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    dss.UpdateAndEstimate(rng.NextBool(0.5) ? 0 : 1 + rng.NextBounded(500));
  }
  const double share = static_cast<double>(dss.Estimate(0)) /
                       static_cast<double>(dss.total());
  EXPECT_NEAR(share, 0.5, 0.08);
}

TEST(DecayingSpaceSavingTest, ForgetsColdKeysFasterThanPlainSketch) {
  // Phase 1: key A hot. Phase 2: key B hot. The decaying sketch's estimate
  // for B must overtake A soon after the flip; the plain sketch needs as
  // long as phase 1 lasted.
  const uint64_t kA = 111;
  const uint64_t kB = 222;
  DecayingSpaceSaving decaying(64, 2000);
  SpaceSaving plain(64);
  Rng rng(9);
  auto feed = [&](uint64_t hot, int count) {
    for (int i = 0; i < count; ++i) {
      const uint64_t key = rng.NextBool(0.5) ? hot : 1000 + rng.NextBounded(300);
      decaying.UpdateAndEstimate(key);
      plain.UpdateAndEstimate(key);
    }
  };
  feed(kA, 20000);
  feed(kB, 6000);  // 30% as long as phase 1
  EXPECT_GT(decaying.Estimate(kB), decaying.Estimate(kA))
      << "decaying sketch must have switched to the new hot key";
  EXPECT_LT(plain.Estimate(kB), plain.Estimate(kA))
      << "plain sketch is still dominated by history";
}

TEST(DecayingSpaceSavingTest, ResetClearsDecayState) {
  DecayingSpaceSaving dss(8, 10);
  for (int i = 0; i < 100; ++i) dss.UpdateAndEstimate(1);
  dss.Reset();
  EXPECT_EQ(dss.total(), 0u);
  EXPECT_EQ(dss.decays_performed(), 0u);
}

// --- auto-tuned half-life --------------------------------------------------

DecayingSpaceSaving::AutoTune TestTune() {
  DecayingSpaceSaving::AutoTune tune;
  tune.enabled = true;
  tune.min_half_life = 250;
  tune.max_half_life = 16000;
  return tune;
}

TEST(AutoTuneTest, DisabledByDefaultAndClampedWhenEnabled) {
  DecayingSpaceSaving plain(16, 1000);
  EXPECT_FALSE(plain.auto_tune().enabled);
  EXPECT_EQ(plain.half_life(), 1000u);
  // A starting half-life outside [min, max] is clamped on construction.
  DecayingSpaceSaving clamped(16, 100000, TestTune());
  EXPECT_EQ(clamped.half_life(), 16000u);
  EXPECT_EQ(clamped.initial_half_life(), 16000u);
}

TEST(AutoTuneTest, ShrinksToMinUnderWholesaleHeadChurn) {
  // The hot window of 8 keys advances every 500 updates — each decay
  // boundary sees an (almost) entirely fresh top-8, so the tuner walks the
  // half-life down until it matches the churn period (it oscillates between
  // 250 and 500: at 250 two consecutive boundaries see the same window and
  // it doubles back — tracking the churn is the intended equilibrium).
  // Deterministic: no RNG at all.
  DecayingSpaceSaving dss(32, 4000, TestTune());
  for (uint64_t i = 0; i < 100000; ++i) {
    dss.UpdateAndEstimate((i / 500) * 8 + (i % 8));
  }
  EXPECT_LE(dss.half_life(), 500u) << "half-life must track the churn period";
  EXPECT_GT(dss.tune_shrinks(), 0u);
  EXPECT_LT(dss.half_life(), dss.initial_half_life());
}

TEST(AutoTuneTest, GrowsToMaxOnStableHead) {
  // A permanently stable 8-key head: overlap is 1 at every boundary, so the
  // half-life doubles until it hits the ceiling — decaying a static stream
  // is pure estimation error.
  DecayingSpaceSaving dss(32, 1000, TestTune());
  for (uint64_t i = 0; i < 100000; ++i) {
    dss.UpdateAndEstimate(i % 8);
  }
  EXPECT_EQ(dss.half_life(), TestTune().max_half_life);
  EXPECT_GE(dss.tune_growths(), 4u);
  EXPECT_EQ(dss.tune_shrinks(), 0u);
}

TEST(AutoTuneTest, GoldenSeedTrajectoryIsReproducible) {
  // Same-seed runs must agree exactly — the tuner is a deterministic
  // function of the update sequence, never of wall clock or allocation
  // order. Two instances fed the identical seeded stream stay byte-equal in
  // counters AND tuning state at every point; spot-check the end.
  auto feed = [](DecayingSpaceSaving* dss) {
    Rng rng(21);
    for (uint64_t i = 0; i < 50000; ++i) {
      const uint64_t hot = 300 + i / 10000;  // hot identity flips 5 times
      const uint64_t key = rng.NextBool(0.4) ? hot : rng.NextBounded(2000);
      dss->UpdateAndEstimate(key);
    }
  };
  DecayingSpaceSaving a(64, 2000, TestTune());
  DecayingSpaceSaving b(64, 2000, TestTune());
  feed(&a);
  feed(&b);
  EXPECT_EQ(a.inner().Counters(), b.inner().Counters());
  EXPECT_EQ(a.half_life(), b.half_life());
  EXPECT_EQ(a.decays_performed(), b.decays_performed());
  EXPECT_EQ(a.tune_shrinks(), b.tune_shrinks());
  EXPECT_EQ(a.tune_growths(), b.tune_growths());
  EXPECT_EQ(a.total(), b.total());
  // The trajectory actually moved: churn every 10k with a 2k half-life must
  // trigger at least one adjustment in 50k updates.
  EXPECT_GT(a.tune_shrinks() + a.tune_growths(), 0u);
}

TEST(AutoTuneTest, ResetRoundTripsTheWholeTuningState) {
  DecayingSpaceSaving dss(64, 2000, TestTune());
  auto feed = [&dss]() {
    Rng rng(21);
    for (uint64_t i = 0; i < 50000; ++i) {
      const uint64_t hot = 300 + i / 10000;
      const uint64_t key = rng.NextBool(0.4) ? hot : rng.NextBounded(2000);
      dss.UpdateAndEstimate(key);
    }
  };
  feed();
  const auto counters = dss.inner().Counters();
  const uint64_t half_life = dss.half_life();
  const uint64_t decays = dss.decays_performed();
  const uint64_t shrinks = dss.tune_shrinks();
  const uint64_t growths = dss.tune_growths();
  const uint64_t total = dss.total();

  dss.Reset();
  EXPECT_EQ(dss.half_life(), dss.initial_half_life());
  EXPECT_EQ(dss.decays_performed(), 0u);
  EXPECT_EQ(dss.tune_shrinks(), 0u);
  EXPECT_EQ(dss.tune_growths(), 0u);
  EXPECT_EQ(dss.total(), 0u);

  feed();  // identical stream after Reset => identical end state
  EXPECT_EQ(dss.inner().Counters(), counters);
  EXPECT_EQ(dss.half_life(), half_life);
  EXPECT_EQ(dss.decays_performed(), decays);
  EXPECT_EQ(dss.tune_shrinks(), shrinks);
  EXPECT_EQ(dss.tune_growths(), growths);
  EXPECT_EQ(dss.total(), total);
}

TEST(AutoTuneTest, PartitionerPlumbsDecayKnobs) {
  PartitionerOptions options;
  options.num_workers = 20;
  options.hash_seed = 5;
  options.sketch = SketchKind::kDecayingSpaceSaving;
  options.decay_half_life = 5000;
  options.decay_auto_tune = true;
  auto dc = CreatePartitioner(AlgorithmKind::kDChoices, options);
  ASSERT_TRUE(dc.ok());
  auto* head_tail = dynamic_cast<HeadTailPartitioner*>(dc.value().get());
  ASSERT_NE(head_tail, nullptr);
  const auto* sketch =
      dynamic_cast<const DecayingSpaceSaving*>(&head_tail->sketch());
  ASSERT_NE(sketch, nullptr);
  EXPECT_EQ(sketch->initial_half_life(), 5000u);
  EXPECT_TRUE(sketch->auto_tune().enabled);
  EXPECT_EQ(sketch->auto_tune().min_half_life, 5000u / 16);
  // The ceiling reaches "effectively no decay" (>= 2^22), not 16x the start.
  EXPECT_EQ(sketch->auto_tune().max_half_life, uint64_t{1} << 22);

  options.decay_auto_tune = false;
  options.decay_half_life = 0;  // derive from theta as before
  auto fixed = CreatePartitioner(AlgorithmKind::kDChoices, options);
  ASSERT_TRUE(fixed.ok());
  const auto* fixed_sketch = dynamic_cast<const DecayingSpaceSaving*>(
      &dynamic_cast<HeadTailPartitioner*>(fixed.value().get())->sketch());
  ASSERT_NE(fixed_sketch, nullptr);
  EXPECT_FALSE(fixed_sketch->auto_tune().enabled);
  EXPECT_GE(fixed_sketch->half_life(), 1024u);
}

TEST(AutoTuneTest, AutoTunedDChoicesSurvivesRotatingHotSet) {
  // End-to-end: auto-tuned decay inside D-Choices on a wholesale-rotation
  // stream (the hot-set-churn failure mode) must stay near-balanced.
  PartitionerOptions options;
  options.num_workers = 20;
  options.hash_seed = 5;
  options.sketch = SketchKind::kDecayingSpaceSaving;
  options.decay_auto_tune = true;
  auto dc = CreatePartitioner(AlgorithmKind::kDChoices, options);
  ASSERT_TRUE(dc.ok());
  Rng rng(11);
  LoadTracker tracker(20);
  const int m = 120000;
  for (int i = 0; i < m; ++i) {
    const uint64_t hot = 5000 + static_cast<uint64_t>(i / 30000);
    const uint64_t key = rng.NextBool(0.4) ? hot : rng.NextBounded(2000);
    const uint32_t w = dc.value()->Route(key);
    tracker.Record(w, key, dc.value()->last_was_head());
  }
  EXPECT_LT(tracker.Imbalance(), 0.06);
}

TEST(DecayingSpaceSavingTest, WorksInsideDChoicesOnDriftingStream) {
  PartitionerOptions options;
  options.num_workers = 20;
  options.hash_seed = 5;
  options.sketch = SketchKind::kDecayingSpaceSaving;
  auto dc = CreatePartitioner(AlgorithmKind::kDChoices, options);
  ASSERT_TRUE(dc.ok());
  Rng rng(11);
  LoadTracker tracker(20);
  const int m = 120000;
  for (int i = 0; i < m; ++i) {
    // Hot key flips identity every 30k messages.
    const uint64_t hot = 5000 + static_cast<uint64_t>(i / 30000);
    const uint64_t key = rng.NextBool(0.4) ? hot : rng.NextBounded(2000);
    const uint32_t w = dc.value()->Route(key);
    tracker.Record(w, key, dc.value()->last_was_head());
  }
  // Cumulative I(m) includes the pre-detection prefix after each identity
  // flip; the bound to clear decisively is PKG's pinned-hot-key level
  // (0.4/2 - 1/20 = 0.15).
  EXPECT_LT(tracker.Imbalance(), 0.06);
}

}  // namespace
}  // namespace slb
