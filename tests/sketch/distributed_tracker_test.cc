#include "slb/sketch/distributed_tracker.h"

#include <gtest/gtest.h>

#include <map>

#include "slb/common/rng.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

TEST(DistributedTrackerTest, SingleSourceMatchesPlainSketch) {
  DistributedHeadTracker tracker(1, 64, /*sync_interval=*/0);
  SpaceSaving plain(64);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.NextBounded(100);
    tracker.Update(0, key);
    plain.UpdateAndEstimate(key);
  }
  tracker.ForceSync();
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(tracker.EstimateGlobal(0, key), plain.Estimate(key));
  }
}

TEST(DistributedTrackerTest, DisjointSourcesMergeExactly) {
  // Two sources see disjoint keys, both under capacity: the merged view
  // must be exact for all of them.
  DistributedHeadTracker tracker(2, 128, 0);
  for (int i = 0; i < 300; ++i) tracker.Update(0, 1);
  for (int i = 0; i < 200; ++i) tracker.Update(1, 2);
  tracker.ForceSync();
  EXPECT_EQ(tracker.EstimateGlobal(0, 1), 300u);
  EXPECT_EQ(tracker.EstimateGlobal(0, 2), 200u);
  EXPECT_EQ(tracker.total(), 500u);
}

TEST(DistributedTrackerTest, HotKeyAtOneSourceVisibleGlobally) {
  // A key hot at ONLY source 3 must appear in the global head after a sync,
  // even though other sources never see it.
  const uint32_t sources = 4;
  DistributedHeadTracker tracker(sources, 64, /*sync_interval=*/1000);
  Rng rng(5);
  for (int round = 0; round < 2000; ++round) {
    for (uint32_t s = 0; s < sources; ++s) {
      if (s == 3 && rng.NextBool(0.5)) {
        tracker.Update(s, 777);  // hot only at source 3
      } else {
        tracker.Update(s, rng.NextBounded(5000));
      }
    }
  }
  tracker.ForceSync();
  // Key 777 holds ~12.5% of the global stream.
  EXPECT_TRUE(tracker.IsGlobalHeavy(0, 777, 0.05))
      << "source 0 must learn about source 3's hot key";
  const auto heavy = tracker.GlobalHeavyHitters(0.05);
  bool found = false;
  for (const auto& hk : heavy) found |= (hk.key == 777);
  EXPECT_TRUE(found);
}

TEST(DistributedTrackerTest, AutomaticSyncFiresOnInterval) {
  DistributedHeadTracker tracker(2, 32, /*sync_interval=*/100);
  for (int i = 0; i < 250; ++i) tracker.Update(0, i % 7);
  EXPECT_GE(tracker.syncs_performed(), 2u);
  // After syncs, local deltas are empty but the snapshot holds the mass.
  EXPECT_GT(tracker.global_snapshot().total(), 0u);
}

TEST(DistributedTrackerTest, LocalDeltaVisibleBeforeSync) {
  DistributedHeadTracker tracker(2, 32, 0);
  for (int i = 0; i < 50; ++i) tracker.Update(0, 9);
  // No sync yet: source 0 sees its delta, source 1 does not.
  EXPECT_EQ(tracker.EstimateGlobal(0, 9), 50u);
  EXPECT_EQ(tracker.EstimateGlobal(1, 9), 0u);
  tracker.ForceSync();
  EXPECT_EQ(tracker.EstimateGlobal(1, 9), 50u);
}

TEST(DistributedTrackerTest, EstimateNeverUndercountsSkewedStreams) {
  const uint32_t sources = 3;
  DistributedHeadTracker tracker(sources, 100, 500);
  ZipfDistribution zipf(1.5, 2000);
  Rng rng(9);
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t key = zipf.Sample(&rng);
    ++truth[key];
    tracker.Update(static_cast<uint32_t>(i % sources), key);
  }
  tracker.ForceSync();
  for (const auto& [key, count] : truth) {
    if (count < 300) continue;  // clearly-tracked keys only
    EXPECT_GE(tracker.EstimateGlobal(0, key), count) << "key " << key;
  }
}

TEST(DistributedTrackerTest, TotalIsExactAcrossSources) {
  DistributedHeadTracker tracker(5, 16, 64);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    tracker.Update(static_cast<uint32_t>(rng.NextBounded(5)),
                   rng.NextBounded(100));
  }
  EXPECT_EQ(tracker.total(), 1000u);
}

}  // namespace
}  // namespace slb
