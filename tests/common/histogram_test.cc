#include "slb/common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "slb/common/rng.h"

namespace slb {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10;
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
}

TEST(HistogramTest, ExactQuantilesSmallSample) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
  EXPECT_NEAR(h.p50(), 50.5, 1.0);
  EXPECT_NEAR(h.p99(), 99.0, 1.1);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileAfterInterleavedAdds) {
  Histogram h;
  h.Add(5);
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);
  h.Add(1);
  h.Add(9);
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);  // re-sorts internally
}

TEST(HistogramTest, ReservoirKeepsBoundedMemoryAndApproximateQuantiles) {
  const size_t cap = 1000;
  Histogram h(cap, 7);
  Rng rng(3);
  const int total = 50000;
  for (int i = 0; i < total; ++i) h.Add(rng.NextDouble());
  EXPECT_TRUE(h.subsampled());
  EXPECT_EQ(h.sample_count(), cap);
  EXPECT_EQ(h.count(), total);
  // Uniform[0,1): quantiles should be near q within sampling error.
  EXPECT_NEAR(h.p50(), 0.5, 0.06);
  EXPECT_NEAR(h.p95(), 0.95, 0.04);
  // Exact stats are unaffected by subsampling.
  EXPECT_NEAR(h.mean(), 0.5, 0.01);
}

TEST(HistogramTest, UnboundedModeNeverSubsamples) {
  Histogram h(0, 1);
  for (int i = 0; i < 5000; ++i) h.Add(i);
  EXPECT_FALSE(h.subsampled());
  EXPECT_EQ(h.sample_count(), 5000u);
}

// Regression: Quantile() used to sort through a const_cast with no guard —
// two threads reading percentiles concurrently raced on the sample vector.
// Run this under TSan (the CI tsan job does) to lock the fix down.
TEST(HistogramTest, ConcurrentQuantileReadersAreSafe) {
  Histogram h(1 << 12, 5);
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) h.Add(rng.NextDouble() * 100.0);

  const double expected_p50 = [&] {
    Histogram reference(1 << 12, 5);
    Rng r2(9);
    for (int i = 0; i < 20000; ++i) reference.Add(r2.NextDouble() * 100.0);
    return reference.p50();
  }();

  std::vector<std::thread> readers;
  std::vector<double> results(8, -1.0);
  for (size_t t = 0; t < results.size(); ++t) {
    readers.emplace_back([&, t] {
      // Every reader hits the lazy sort path; all must agree.
      results[t] = t % 2 == 0 ? h.p50() : h.Quantile(0.5);
    });
  }
  for (auto& thread : readers) thread.join();
  for (double r : results) EXPECT_DOUBLE_EQ(r, expected_p50);
}

// Regression: the interpolation reads samples_[ceil(rank)]; q = 1.0 with a
// single sample (rank 0) and a subsampled reservoir at q = 1.0 must both
// stay inside the sample vector.
TEST(HistogramTest, QuantileUpperEdgeCases) {
  Histogram single;
  single.Add(42.0);
  EXPECT_DOUBLE_EQ(single.Quantile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(single.Quantile(0.0), 42.0);
  // Clamp: out-of-range q must not index past the end.
  EXPECT_DOUBLE_EQ(single.Quantile(2.0), 42.0);
  EXPECT_DOUBLE_EQ(single.Quantile(-1.0), 42.0);

  const size_t cap = 64;
  Histogram subsampled(cap, 3);
  for (int i = 0; i < 10000; ++i) subsampled.Add(static_cast<double>(i));
  ASSERT_TRUE(subsampled.subsampled());
  ASSERT_EQ(subsampled.sample_count(), cap);
  const double top = subsampled.Quantile(1.0);
  EXPECT_GE(top, 0.0);
  EXPECT_LT(top, 10000.0);
  EXPECT_GE(subsampled.Quantile(1.0), subsampled.Quantile(0.999));
}

TEST(HistogramTest, MergeCombinesExactStatsAndSamples) {
  Histogram a(0, 1);
  Histogram b(0, 2);
  for (int i = 1; i <= 50; ++i) a.Add(static_cast<double>(i));
  for (int i = 51; i <= 100; ++i) b.Add(static_cast<double>(i));
  a.Merge(b);
  EXPECT_EQ(a.count(), 100);
  EXPECT_DOUBLE_EQ(a.mean(), 50.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_EQ(a.sample_count(), 100u);
  EXPECT_DOUBLE_EQ(a.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.Quantile(1.0), 100.0);
  EXPECT_NEAR(a.p50(), 50.5, 1.0);
}

TEST(HistogramTest, MergeOverflowingCapacityDownsamples) {
  const size_t cap = 100;
  Histogram a(cap, 1);
  Histogram b(cap, 2);
  for (int i = 0; i < 80; ++i) a.Add(0.25);
  for (int i = 0; i < 80; ++i) b.Add(0.75);
  a.Merge(b);
  EXPECT_TRUE(a.subsampled());
  EXPECT_EQ(a.sample_count(), cap);
  EXPECT_EQ(a.count(), 160);        // exact despite subsampling
  EXPECT_DOUBLE_EQ(a.mean(), 0.5);  // exact despite subsampling
  const double p50 = a.p50();
  EXPECT_TRUE(p50 >= 0.25 && p50 <= 0.75);
}

}  // namespace
}  // namespace slb
