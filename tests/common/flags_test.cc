#include "slb/common/flags.h"

#include <gtest/gtest.h>

namespace slb {
namespace {

struct Fixture {
  int64_t workers = 5;
  double epsilon = 1e-4;
  bool paper = false;
  std::string algo = "pkg";
  FlagSet flags{"test"};

  Fixture() {
    flags.AddInt64("workers", &workers, "number of workers");
    flags.AddDouble("epsilon", &epsilon, "imbalance tolerance");
    flags.AddBool("paper", &paper, "paper-scale parameters");
    flags.AddString("algo", &algo, "algorithm");
  }
};

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  Fixture f;
  ASSERT_TRUE(f.flags.Parse({}).ok());
  EXPECT_EQ(f.workers, 5);
  EXPECT_EQ(f.algo, "pkg");
}

TEST(FlagsTest, EqualsSyntax) {
  Fixture f;
  ASSERT_TRUE(f.flags.Parse({"--workers=100", "--epsilon=1e-3", "--algo=dc"}).ok());
  EXPECT_EQ(f.workers, 100);
  EXPECT_DOUBLE_EQ(f.epsilon, 1e-3);
  EXPECT_EQ(f.algo, "dc");
}

TEST(FlagsTest, SpaceSyntax) {
  Fixture f;
  ASSERT_TRUE(f.flags.Parse({"--workers", "50"}).ok());
  EXPECT_EQ(f.workers, 50);
}

TEST(FlagsTest, SuffixedIntegers) {
  Fixture f;
  ASSERT_TRUE(f.flags.Parse({"--workers=2k"}).ok());
  EXPECT_EQ(f.workers, 2000);
}

TEST(FlagsTest, BareAndNegatedBooleans) {
  Fixture f;
  ASSERT_TRUE(f.flags.Parse({"--paper"}).ok());
  EXPECT_TRUE(f.paper);
  ASSERT_TRUE(f.flags.Parse({"--no-paper"}).ok());
  EXPECT_FALSE(f.paper);
  ASSERT_TRUE(f.flags.Parse({"--paper=true"}).ok());
  EXPECT_TRUE(f.paper);
}

TEST(FlagsTest, UnknownFlagFailsLoudly) {
  Fixture f;
  const Status st = f.flags.Parse({"--wrokers=10"});
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(FlagsTest, BadValueFails) {
  Fixture f;
  EXPECT_FALSE(f.flags.Parse({"--workers=ten"}).ok());
  EXPECT_FALSE(f.flags.Parse({"--epsilon=small"}).ok());
  EXPECT_FALSE(f.flags.Parse({"--paper=maybe"}).ok());
}

TEST(FlagsTest, MissingValueFails) {
  Fixture f;
  EXPECT_FALSE(f.flags.Parse({"--workers"}).ok());
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  Fixture f;
  ASSERT_TRUE(f.flags.Parse({"input.trace", "--workers=9", "out.tsv"}).ok());
  ASSERT_EQ(f.flags.positional().size(), 2u);
  EXPECT_EQ(f.flags.positional()[0], "input.trace");
  EXPECT_EQ(f.flags.positional()[1], "out.tsv");
  EXPECT_EQ(f.workers, 9);
}

TEST(FlagsTest, UsageMentionsFlagsAndDefaults) {
  Fixture f;
  const std::string usage = f.flags.Usage();
  EXPECT_NE(usage.find("--workers"), std::string::npos);
  EXPECT_NE(usage.find("number of workers"), std::string::npos);
  EXPECT_NE(usage.find("5"), std::string::npos);
}

}  // namespace
}  // namespace slb
