#include "slb/common/status.h"

#include <gtest/gtest.h>

namespace slb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad n");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad n");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusWithoutValueBecomesInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailingHelper() { return Status::IOError("disk"); }

Status PropagatingHelper() {
  SLB_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(PropagatingHelper().IsIOError());
}

}  // namespace
}  // namespace slb
