#include "slb/common/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "slb/common/rng.h"

namespace slb {
namespace {

TEST(FlatIndexMapTest, EmptyMapFindsNothing) {
  FlatIndexMap map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Get(0), FlatIndexMap::kAbsent);
  EXPECT_EQ(map.Get(42), FlatIndexMap::kAbsent);
  EXPECT_FALSE(map.Erase(42));
}

TEST(FlatIndexMapTest, SetGetOverwriteErase) {
  FlatIndexMap map;
  map.Set(7, 100);
  map.Set(0, 3);  // key 0 must be a legal key (no key sentinel)
  EXPECT_EQ(map.Get(7), 100);
  EXPECT_EQ(map.Get(0), 3);
  EXPECT_EQ(map.size(), 2u);

  map.Set(7, 200);  // overwrite keeps size
  EXPECT_EQ(map.Get(7), 200);
  EXPECT_EQ(map.size(), 2u);

  EXPECT_TRUE(map.Erase(7));
  EXPECT_EQ(map.Get(7), FlatIndexMap::kAbsent);
  EXPECT_FALSE(map.Erase(7));
  EXPECT_EQ(map.Get(0), 3);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatIndexMapTest, GrowsPastInitialCapacity) {
  FlatIndexMap map(4);
  for (uint64_t k = 0; k < 10000; ++k) {
    map.Set(k * 0x9e3779b97f4a7c15ULL, static_cast<int32_t>(k));
  }
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_EQ(map.Get(k * 0x9e3779b97f4a7c15ULL), static_cast<int32_t>(k));
  }
}

TEST(FlatIndexMapTest, ClearEmptiesButKeepsWorking) {
  FlatIndexMap map;
  for (uint64_t k = 0; k < 100; ++k) map.Set(k, static_cast<int32_t>(k));
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Get(5), FlatIndexMap::kAbsent);
  map.Set(5, 55);
  EXPECT_EQ(map.Get(5), 55);
}

// The SpaceSaving workload: endless interleaved insert/erase churn at
// constant size. Backward-shift deletion must keep probe chains exact —
// a reference unordered_map catches any divergence.
TEST(FlatIndexMapTest, ChurnMatchesReferenceMap) {
  FlatIndexMap map;
  std::unordered_map<uint64_t, int32_t> reference;
  Rng rng(123);
  for (int step = 0; step < 200000; ++step) {
    const uint64_t key = rng.NextBounded(512);  // dense keyspace -> collisions
    const uint32_t op = static_cast<uint32_t>(rng.NextBounded(3));
    if (op < 2) {
      const int32_t value = static_cast<int32_t>(step);
      map.Set(key, value);
      reference[key] = value;
    } else {
      const bool erased = map.Erase(key);
      EXPECT_EQ(erased, reference.erase(key) == 1) << "step " << step;
    }
    const auto it = reference.find(key);
    ASSERT_EQ(map.Get(key), it == reference.end() ? FlatIndexMap::kAbsent
                                                  : it->second)
        << "step " << step;
    ASSERT_EQ(map.size(), reference.size());
  }
  // Full cross-check at the end.
  for (const auto& [key, value] : reference) {
    ASSERT_EQ(map.Get(key), value);
  }
}

}  // namespace
}  // namespace slb
