#include "slb/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace slb {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const size_t count = 10000;
  std::vector<std::atomic<int>> visits(count);
  ParallelFor(count, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); },
              /*num_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  auto compute = [](size_t threads) {
    std::vector<uint64_t> out(64, 0);
    ParallelFor(64, [&](size_t i) { out[i] = i * i + 1; }, threads);
    return out;
  };
  EXPECT_EQ(compute(1), compute(2));
  EXPECT_EQ(compute(2), compute(8));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> sum{0};
  ParallelFor(3, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); }, 16);
  EXPECT_EQ(sum.load(), 3);
}

// Regression: an exception escaping fn on a worker thread used to hit the
// thread boundary and call std::terminate. It must propagate to the caller.
TEST(ParallelForTest, WorkerExceptionIsRethrownOnCaller) {
  EXPECT_THROW(
      ParallelFor(
          1000,
          [](size_t i) {
            if (i == 137) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelForTest, ExceptionStopsRemainingWork) {
  std::atomic<size_t> executed{0};
  try {
    ParallelFor(
        1 << 20,
        [&](size_t i) {
          if (i == 0) throw std::runtime_error("early");
          executed.fetch_add(1);
        },
        4);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error&) {
  }
  // Workers drain quickly after the failure flag is set; far fewer than the
  // full million indices may run.
  EXPECT_LT(executed.load(), size_t{1} << 20);
}

TEST(ParallelForTest, SerialPathPropagatesException) {
  EXPECT_THROW(ParallelFor(
                   4, [](size_t) { throw std::logic_error("serial"); },
                   /*num_threads=*/1),
               std::logic_error);
}

// Regression: with count near SIZE_MAX the old fetch_add claim could push
// the shared counter past count and wrap to zero, looping forever. The
// CAS-claim never advances past count: a failure at index 0 must terminate
// the whole call promptly instead of hanging.
TEST(ParallelForTest, HugeCountDoesNotWrapCounter) {
  EXPECT_THROW(ParallelFor(
                   std::numeric_limits<size_t>::max(),
                   [](size_t) { throw std::runtime_error("stop"); }, 8),
               std::runtime_error);
}

}  // namespace
}  // namespace slb
