#include "slb/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace slb {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const size_t count = 10000;
  std::vector<std::atomic<int>> visits(count);
  ParallelFor(count, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); },
              /*num_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  auto compute = [](size_t threads) {
    std::vector<uint64_t> out(64, 0);
    ParallelFor(64, [&](size_t i) { out[i] = i * i + 1; }, threads);
    return out;
  };
  EXPECT_EQ(compute(1), compute(2));
  EXPECT_EQ(compute(2), compute(8));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> sum{0};
  ParallelFor(3, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); }, 16);
  EXPECT_EQ(sum.load(), 3);
}

}  // namespace
}  // namespace slb
