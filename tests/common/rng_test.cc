#include "slb/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace slb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(7);
  const uint64_t first = a.Next();
  a.Next();
  a.Seed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(99);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(5);
  const uint64_t bound = 10;
  const int samples = 100000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < samples; ++i) ++counts[rng.NextBounded(bound)];
  const double expected = static_cast<double>(samples) / bound;
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected))
        << "bucket " << b;
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
}

TEST(SplitMix64Test, MixIsStateless) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

// Golden sequences: pin the exact generator output, not just agreement
// between two in-process instances. If the seeding recipe or the xoshiro
// update ever changes, every "reproducible from a single seed" experiment
// silently changes with it — this test makes that loud, and guards
// reproducibility across runs, platforms, and compilers.
TEST(RngTest, GoldenSequenceForSeed2026) {
  const uint64_t expected[] = {
      0x92e011592e98ae15ULL, 0x489f37946d6d18d8ULL, 0xd0009e279d9cdedaULL,
      0xe4c7dca786d56702ULL, 0xcfe18b79c1223acaULL, 0xc9edb1a3f94f7148ULL,
      0xd56e344e58dba5acULL, 0xd4321a38c6817e57ULL,
  };
  Rng rng(2026);
  for (uint64_t value : expected) EXPECT_EQ(rng.Next(), value);
}

TEST(SplitMix64Test, GoldenSequenceForState42) {
  const uint64_t expected[] = {
      0xbdd732262feb6e95ULL, 0x28efe333b266f103ULL,
      0x47526757130f9f52ULL, 0x581ce1ff0e4ae394ULL,
  };
  uint64_t state = 42;
  for (uint64_t value : expected) EXPECT_EQ(SplitMix64(&state), value);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~uint64_t{0});
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace slb
