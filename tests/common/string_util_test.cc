#include "slb/common/string_util.h"

#include <gtest/gtest.h>

namespace slb {
namespace {

TEST(ParseInt64Test, PlainIntegers) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("12345", &v));
  EXPECT_EQ(v, 12345);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
}

TEST(ParseInt64Test, SuffixMultipliers) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("2k", &v));
  EXPECT_EQ(v, 2000);
  EXPECT_TRUE(ParseInt64("3M", &v));
  EXPECT_EQ(v, 3000000);
  EXPECT_TRUE(ParseInt64("1g", &v));
  EXPECT_EQ(v, 1000000000);
}

TEST(ParseInt64Test, ScientificNotation) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("1e7", &v));
  EXPECT_EQ(v, 10000000);
  EXPECT_TRUE(ParseInt64("2.2e6", &v));
  EXPECT_EQ(v, 2200000);
}

TEST(ParseInt64Test, RejectsMalformed) {
  int64_t v = 99;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("12abc", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));  // non-integral
  EXPECT_FALSE(ParseInt64("k", &v));
  EXPECT_EQ(v, 99) << "output must be untouched on failure";
}

TEST(ParseDoubleTest, ParsesAndRejects) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(ParseDouble("1e-4", &v));
  EXPECT_DOUBLE_EQ(v, 1e-4);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.2.3", &v));
  EXPECT_FALSE(ParseDouble("12x", &v));
}

TEST(FormatDoubleTest, Compact) {
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
}

TEST(SplitJoinTest, RoundTrips) {
  const auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(JoinStrings(parts, ","), "a,b,,c");
}

TEST(SplitStringTest, NoDelimiterYieldsWhole) {
  const auto parts = SplitString("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
}

TEST(HumanCountTest, Scales) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(22000000), "22.0M");
  EXPECT_EQ(HumanCount(1200000000), "1.2G");
  EXPECT_EQ(HumanCount(690000), "690.0k");
}

}  // namespace
}  // namespace slb
